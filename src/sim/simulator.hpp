#pragma once

/// \file simulator.hpp
/// Discrete-event simulation engine: a virtual clock and a stable
/// time-ordered event queue with cancellation. Substrate for the
/// protocol-faithful zeroconf simulation that validates the DRM model.
///
/// The queue is allocation-free in steady state: events live in a slab
/// of reusable slots addressed by {slot index, sequence number} handles,
/// their callbacks in fixed-capacity inline buffers (action.hpp), and
/// the time ordering in a hand-managed binary heap of plain
/// {time, seq, slot} entries. Cancellation recycles the slot immediately
/// and leaves a stale heap entry that is skipped at pop time (its
/// sequence number no longer matches the slot's occupant), so no
/// per-event heap traffic remains once the slab and heap have reached
/// their high-water capacity — see DESIGN.md §"Sim-core memory model".

#include <cstdint>
#include <vector>

#include "common/contract.hpp"
#include "sim/action.hpp"

namespace zc::sim {

class Simulator;

/// Handle to a scheduled event; allows cancellation (e.g. a host cancels
/// its probe timer when a conflicting reply arrives). Value type: copies
/// refer to the same event. Must not outlive its Simulator, and handles
/// taken before a `Simulator::reset()` must not be used after it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() noexcept;

  [[nodiscard]] bool pending() const noexcept;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t seq) noexcept
      : sim_(sim), slot_(slot), seq_(seq) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// The event-driven simulation core.
class Simulator {
 public:
  /// Inline storage per event callback, sized for the largest in-tree
  /// capture list (Medium's delivery closure: this + target + Packet);
  /// a larger capture is a compile-time error, not a heap fallback.
  static constexpr std::size_t kActionCapacity = 48;
  using Action = InplaceAction<kActionCapacity>;

  /// Current virtual time (seconds).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now; `delay` must be
  /// finite and >= 0. Ties are broken FIFO by scheduling order (stable
  /// determinism).
  EventHandle schedule(double delay, Action action);

  /// Schedule at an absolute finite time >= now().
  EventHandle schedule_at(double time, Action action);

  /// Run events in time order until the queue is empty or `max_events`
  /// have been executed. Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run until the virtual clock would pass `t_end` (events at exactly
  /// t_end still run). Returns the number of events executed.
  std::size_t run_until(double t_end);

  /// Events scheduled and neither fired nor cancelled.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }

  /// Drop every pending event and rewind the clock to 0, keeping the
  /// slab, heap, and free-list capacity for reuse (the trial-context
  /// reset path). Sequence numbers keep increasing across resets, so a
  /// stale pre-reset handle can never match a post-reset event.
  void reset() noexcept;

  // --- Pool telemetry (sim.pool.* gauges) ---------------------------------

  /// Slots in the slab (its high-water mark: slots are never released).
  [[nodiscard]] std::size_t pool_slots() const noexcept {
    return slots_.size();
  }
  /// Maximum number of simultaneously pending events seen so far.
  [[nodiscard]] std::size_t pool_high_water() const noexcept {
    return high_water_;
  }
  /// Events that reused a previously-freed slot (steady-state traffic).
  [[nodiscard]] std::uint64_t pool_reuse_count() const noexcept {
    return reuse_count_;
  }
  /// Events executed over the simulator's lifetime (not rewound by
  /// reset()) — throughput accounting for benches.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  friend class EventHandle;

  /// Sentinel occupant for a free slot; real sequence numbers stay below
  /// it for any realistic event count.
  static constexpr std::uint64_t kFreeSeq = ~std::uint64_t{0};

  struct Slot {
    std::uint64_t seq = kFreeSeq;  ///< occupant's seq; kFreeSeq when free
    Action action;
  };

  struct HeapEntry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Min-heap order on (time, seq): `a` fires after `b`.
  static bool later(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  /// Pop the next live event and run it, or return false if none.
  bool step();

  /// Acquire a slot for `seq` (free list first, then grow the slab).
  [[nodiscard]] std::uint32_t acquire_slot();
  /// Return `slot` to the free list, destroying its callback.
  void release_slot(std::uint32_t slot) noexcept;
  /// Drop stale (cancelled) entries from the heap head.
  void skim_cancelled() noexcept;

  void cancel_event(std::uint32_t slot, std::uint64_t seq) noexcept {
    if (slot >= slots_.size() || slots_[slot].seq != seq) return;
    release_slot(slot);
    --live_;
  }
  [[nodiscard]] bool event_pending(std::uint32_t slot,
                                   std::uint64_t seq) const noexcept {
    return slot < slots_.size() && slots_[slot].seq == seq;
  }

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< LIFO recycle stack
  std::vector<HeapEntry> heap_;

  std::size_t high_water_ = 0;
  std::uint64_t reuse_count_ = 0;
  std::uint64_t executed_ = 0;
};

inline void EventHandle::cancel() noexcept {
  if (sim_ != nullptr) sim_->cancel_event(slot_, seq_);
}

inline bool EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

}  // namespace zc::sim
