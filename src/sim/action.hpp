#pragma once

/// \file action.hpp
/// Fixed-capacity, move-only callable for the simulator's event slots:
/// the callback lives *inside* the slot (small-buffer storage sized for
/// every in-tree caller), so scheduling an event never touches the heap
/// — unlike std::function, which may allocate for captures beyond its
/// implementation-defined SBO. Exceeding the capacity is a compile-time
/// error, keeping the allocation-free guarantee enforceable.

#include <cstddef>
#include <type_traits>
#include <utility>

namespace zc::sim {

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
template <std::size_t Capacity>
class InplaceAction {
 public:
  InplaceAction() noexcept = default;

  /// Implicit from any nothrow-movable callable that fits the buffer.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InplaceAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable captures exceed the event-slot capacity; "
                  "shrink the capture list or raise Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for the event-slot buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-movable (slots "
                  "relocate when the slab grows)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    vtable_ = &kVTable<Fn>;
  }

  InplaceAction(InplaceAction&& other) noexcept { move_from(other); }
  InplaceAction& operator=(InplaceAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceAction(const InplaceAction&) = delete;
  InplaceAction& operator=(const InplaceAction&) = delete;
  ~InplaceAction() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static void invoke_impl(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void relocate_impl(void* from, void* to) noexcept {
    Fn* f = static_cast<Fn*>(from);
    ::new (to) Fn(std::move(*f));
    f->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* p) noexcept {
    static_cast<Fn*>(p)->~Fn();
  }

  template <typename Fn>
  static constexpr VTable kVTable{&invoke_impl<Fn>, &relocate_impl<Fn>,
                                  &destroy_impl<Fn>};

  void move_from(InplaceAction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace zc::sim
