#pragma once

/// \file zeroconf_host.hpp
/// The configuring host's state machine, following the Internet-Draft [2]
/// (Sec. 2): pick a random candidate address, send up to n ARP probes —
/// probe i followed by its own listening window r_i from the configured
/// ProbeSchedule (the draft's uniform r is the default) — abort and
/// restart with a fresh candidate on any conflicting reply (or on a
/// conflicting simultaneous probe), claim the address after n silent
/// listening periods.
///
/// Includes the details the paper's model abstracts away (Sec. 3.1):
///  (a) optionally avoid re-trying addresses that already failed,
///  (b) optional rate limiting to one attempt per minute after 10
///      conflicts.

#include <functional>
#include <memory>
#include <vector>

#include "core/schedule.hpp"
#include "prob/delay.hpp"
#include "prob/rng.hpp"
#include "sim/medium.hpp"

namespace zc::sim {

/// Protocol configuration for a joining host.
struct ZeroconfConfig {
  /// Per-probe listening windows: probe i listens for schedule.timeout(i)
  /// seconds; the probe count per attempt is schedule.n(). Defaults to
  /// the draft's uniform(4, 2 s); the uniform case stays allocation-free
  /// (copying a uniform schedule copies no heap storage) so pooled trial
  /// loops keep their zero-allocation steady state.
  core::ProbeSchedule schedule;

  /// Draft PROBE_WAIT: a uniform random delay in [0, probe_wait_max]
  /// before the first probe of each attempt, desynchronizing hosts that
  /// start simultaneously. 0 = probe immediately (model-faithful).
  /// A conflict observed during the wait aborts the attempt; the elapsed
  /// wait counts toward waiting_time.
  double probe_wait_max = 0.0;

  /// Draft detail (a): never re-pick a candidate that previously drew a
  /// conflict. Off = model-faithful uniform re-pick.
  bool avoid_failed_addresses = false;

  /// Draft detail (b): rate limiting after repeated conflicts.
  bool rate_limit = false;
  unsigned rate_limit_threshold = 10;
  double rate_limit_delay = 60.0;

  /// React to ARP *probes* from other configuring hosts for our candidate
  /// (simultaneous-configuration conflict rule of the draft).
  bool detect_probe_conflicts = true;

  /// Once configured, answer probes for the claimed address (the address-
  /// defense half of the protocol); nullptr = reply instantly & reliably.
  std::shared_ptr<const prob::DelayDistribution> defend_response;

  /// Maintenance phase (draft part 2, abstracted by the paper's model):
  /// broadcast `announce_count` gratuitous ARPs after claiming, spaced by
  /// `announce_interval`. A defense reply (or a foreign announcement for
  /// the claimed address) marks the collision as *detected*. 0 = off.
  unsigned announce_count = 0;
  double announce_interval = 2.0;  ///< draft ANNOUNCE_INTERVAL

  /// Runaway-run safeguards for adversarial scenarios (e.g. every address
  /// appears taken): instead of looping forever, the host gives up with
  /// Outcome::aborted before starting attempt `max_attempts + 1` or
  /// sending probe `max_probes + 1`. 0 = unbounded (model-faithful); any
  /// other value is valid — deliberately capping below schedule.n()
  /// forces mid-attempt aborts and is how the hostile-regime tests
  /// exercise the abort path, so validate() imposes no coupling between
  /// the caps and the schedule.
  unsigned max_attempts = 0;
  unsigned max_probes = 0;

  /// The one place the config's domain checks live, mirroring
  /// ProtocolParams::validate: the schedule must be well-formed (n >= 1,
  /// finite timeouts >= 0 — the model-faithful r = 0 limit is allowed
  /// here), the wait/delay knobs finite and non-negative, and the rate
  /// limiter's threshold >= 1. Throws zc::ContractViolation naming the
  /// offending field. Called at host construction, i.e. on every network
  /// join.
  void validate() const;
};

/// Terminal state of a configuration run.
enum class Outcome {
  pending,     ///< still probing
  configured,  ///< address claimed after n silent periods
  aborted,     ///< gave up: safety cap hit or externally aborted
};

/// A host executing the zeroconf initialization phase.
class ZeroconfHost {
 public:
  /// \param address_space  candidate addresses are drawn uniformly from
  ///                       [1, address_space]
  /// \param on_done        invoked once when the host claims an address
  ZeroconfHost(Simulator& sim, Medium& medium, Address address_space,
               ZeroconfConfig config, prob::Rng& rng,
               std::function<void()> on_done = nullptr);

  ZeroconfHost(const ZeroconfHost&) = delete;
  ZeroconfHost& operator=(const ZeroconfHost&) = delete;

  /// Unsubscribes any remaining address and detaches from the medium, so
  /// the interface id is recycled for the next joiner on a reused
  /// network. Any still-scheduled deliveries to this host become inert.
  ~ZeroconfHost();

  /// Begin the first attempt (at the current simulation time).
  void start();

  /// Give up now (Outcome::aborted): cancels pending timers and releases
  /// the candidate. Used by Network when a virtual-time budget expires;
  /// no-op once the host reached a terminal state.
  void abort();

  [[nodiscard]] Outcome outcome() const noexcept { return outcome_; }
  /// The claimed address; kNoAddress while pending.
  [[nodiscard]] Address configured_address() const noexcept {
    return configured_address_;
  }
  [[nodiscard]] HostId id() const noexcept { return id_; }

  /// Total ARP probes sent across all attempts.
  [[nodiscard]] unsigned probes_sent() const noexcept { return probes_sent_; }
  /// Address-selection attempts (>= 1 once started).
  [[nodiscard]] unsigned attempts() const noexcept { return attempts_; }
  /// Conflicts observed (replies or probe clashes).
  [[nodiscard]] unsigned conflicts() const noexcept { return conflicts_; }
  /// Wall-clock spent listening (partial periods counted as elapsed).
  [[nodiscard]] double waiting_time() const noexcept { return waiting_time_; }
  /// Listening time under *model* accounting: every sent probe is charged
  /// its full window from the schedule, whether or not a reply cut it
  /// short. Maintained only for non-uniform schedules (the uniform case
  /// is reconstructed as probes_sent * r by RunResult::model_cost,
  /// preserving the historical arithmetic bit-for-bit).
  [[nodiscard]] double model_listening() const noexcept {
    return model_listening_;
  }
  /// The configuration this host runs (source of truth for the schedule).
  [[nodiscard]] const ZeroconfConfig& config() const noexcept {
    return config_;
  }
  /// Simulation time of configuration completion.
  [[nodiscard]] double finish_time() const noexcept { return finish_time_; }

  /// True once a post-claim conflict was observed (defense reply or a
  /// foreign claim of the configured address).
  [[nodiscard]] bool collision_detected() const noexcept {
    return collision_detected_;
  }
  /// Simulation time of the detection (meaningful only when detected).
  [[nodiscard]] double collision_detected_at() const noexcept {
    return collision_detected_at_;
  }

 private:
  void begin_attempt();
  void send_probe();
  [[nodiscard]] bool hit_safety_cap() const;
  void on_period_end();
  void on_packet(const Packet& packet);
  void handle_conflict();
  void claim();
  void send_announcement();
  void mark_collision_detected();
  [[nodiscard]] Address pick_candidate();

  Simulator& sim_;
  Medium& medium_;
  Address address_space_;
  ZeroconfConfig config_;
  prob::Rng& rng_;
  std::function<void()> on_done_;

  HostId id_ = 0;
  Address candidate_ = kNoAddress;
  Address configured_address_ = kNoAddress;
  Outcome outcome_ = Outcome::pending;
  bool started_ = false;

  unsigned probes_this_attempt_ = 0;
  unsigned probes_sent_ = 0;
  unsigned attempts_ = 0;
  unsigned conflicts_ = 0;
  double waiting_time_ = 0.0;
  double model_listening_ = 0.0;
  double period_start_ = 0.0;
  double finish_time_ = 0.0;
  unsigned announcements_sent_ = 0;
  bool collision_detected_ = false;
  double collision_detected_at_ = 0.0;
  EventHandle period_timer_;
  /// Candidates that drew a conflict; tracked only when
  /// config_.avoid_failed_addresses is set (the only reader). A flat
  /// vector: the set stays tiny and pick_candidate() never re-draws a
  /// failed address, so entries are unique by construction.
  std::vector<Address> failed_;
};

}  // namespace zc::sim
