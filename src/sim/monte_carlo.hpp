#pragma once

/// \file monte_carlo.hpp
/// Monte-Carlo estimation of the model's measures from protocol-faithful
/// simulation: mean cost (both accounting modes), collision rate, probe
/// and attempt counts. Plays the role of the measurements the paper did
/// not have (Sec. 7), and validates the DRM abstraction.

#include <cstdint>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "sim/precision.hpp"
#include "sim/stats.hpp"

namespace zc::sim {

/// Point estimate with uncertainty.
struct Estimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_halfwidth = 0.0;
};

/// Aggregated Monte-Carlo results over independent configuration runs.
///
/// Runs that hit a safety cap (RunResult::aborted) are tallied separately
/// and excluded from the estimates: an aborted run claimed no address, so
/// folding its truncated cost into the means would silently bias them —
/// and in pathological scenarios (error_cost * huge probe counts) could
/// push accumulators to inf/NaN. Estimates therefore always aggregate
/// finite samples over `completed` runs only.
struct MonteCarloResults {
  /// Trials the estimates were asked to aggregate: the fixed
  /// `MonteCarloOptions::trials` in fixed mode, the *realized* ladder
  /// total in adaptive mode (the quantity `--resume` must replay).
  std::size_t trials = 0;
  std::size_t completed = 0;  ///< trials that configured an address
  std::size_t aborted = 0;    ///< trials stopped by a safety cap / budget
  double aborted_rate = 0.0;  ///< aborted / trials

  /// Adaptive-precision bookkeeping (PrecisionTargets). In fixed mode
  /// `adaptive` is false, `rounds` is 0, and `trials_requested` equals
  /// `trials`. In adaptive mode `trials_requested` is the budget cap,
  /// `rounds` counts executed ladder rounds, and `precision_met` records
  /// whether every requested CI target was satisfied (false when the run
  /// stopped at the cap or was cancelled mid-ladder).
  bool adaptive = false;
  std::size_t trials_requested = 0;
  std::size_t rounds = 0;
  bool precision_met = false;
  /// Cost samples rejected by the overflow guard (non-finite); always 0
  /// unless a scenario multiplies extreme costs into double overflow.
  std::size_t non_finite = 0;

  Estimate model_cost;    ///< (r+c) * probes + E * collision, per run
  Estimate elapsed_cost;  ///< waiting + c * probes + E * collision
  Estimate probes;        ///< probes sent per run
  Estimate attempts;      ///< address attempts per run
  Estimate waiting_time;  ///< elapsed listening time per run

  std::size_t collisions = 0;
  /// Collision rate among *completed* runs (0 when none completed).
  double collision_rate = 0.0;
  ProportionCi collision_ci95;

  /// Semantic metrics of the campaign: per-DeliveryCause delivery
  /// counters ("sim.delivery.*") and injector decisions ("faults.*")
  /// summed over every trial, trial outcome tallies ("mc.trials.*"),
  /// outcome histograms ("mc.*.per_trial"), and chunk merge stats
  /// ("mc.chunks" / "mc.chunk.size"). Chunk-local sets merge in
  /// ascending chunk order — like the Welford estimates above — so this
  /// set is bitwise-identical at any thread setting. Also published to
  /// obs::Registry::global(). Empty when collection is off (runtime
  /// Registry::set_enabled(false) or compile-time -DZC_OBS_METRICS=OFF).
  obs::MetricSet metrics;

  /// Event-pool telemetry of the reusable per-chunk trial contexts:
  /// largest slab (pool_slots) and pending-event high-water mark across
  /// chunks, and slot reuses summed over chunks. Deterministic for fixed
  /// (inputs, seed, trials, chunk_size) — the chunk layout is thread-
  /// agnostic — but kept out of `metrics` (published to the registry as
  /// "sim.pool.*" gauges instead) so campaign metric bytes stay
  /// comparable with pre-pool recordings.
  std::size_t pool_slots = 0;
  std::size_t pool_high_water = 0;
  std::uint64_t pool_reuse = 0;
};

/// Options of a Monte-Carlo campaign.
struct MonteCarloOptions {
  /// Fixed trial count — and, when `precision` is enabled and
  /// `precision.max_trials` is 0, the adaptive budget cap.
  std::size_t trials = 10000;
  std::uint64_t seed = 42;

  /// Adaptive-precision targets. Disabled (the default) runs exactly
  /// `trials` trials through the historical single parallel reduction —
  /// byte-identical to every prior release. Enabled, trials execute in a
  /// deterministic doubling ladder of rounds (first `min_trials`-or-512,
  /// then the total doubles each round, truncated at the cap); after
  /// each round the per-measure stopping rules (precision.hpp) are
  /// evaluated on the cumulative accumulators and the ladder stops once
  /// all requested CI targets are met. Each round is a normal chunked
  /// reduction over *global* trial indices with counter-based seeds, so
  /// for fixed (inputs, seed, targets) the realized trial count and all
  /// estimates are bitwise-identical at any thread count.
  PrecisionTargets precision;
  double probe_cost = 2.0;   ///< c, for the cost estimates
  double error_cost = 1e35;  ///< E, for the cost estimates

  /// Worker threads: 0 = hardware concurrency, 1 = serial on the calling
  /// thread. Results are bitwise-identical at every setting: trial t is
  /// seeded by the pure function exec::split_seed(seed, t) and chunk
  /// accumulators merge in a fixed order, so scheduling never leaks into
  /// the estimates.
  unsigned threads = 0;

  /// Trials per work chunk (0 = auto, ~64 chunks). Fixed per campaign;
  /// see exec::ExecOptions::chunk_size for the determinism contract.
  std::size_t chunk_size = 0;

  /// Optional cooperative stop, checked at trial-chunk boundaries (not
  /// owned; must outlive the call). When a stop is requested mid-run the
  /// remaining chunks are skipped and the returned estimates aggregate
  /// only the trials that actually ran (`completed` + `aborted` +
  /// `non_finite` < `trials`) — callers that see a stop should treat the
  /// results as partial and discard or re-run them.
  const exec::CancelToken* cancel = nullptr;

  /// The one place the options' domain checks live, mirroring
  /// ProtocolParams::validate: trials >= 1, finite non-negative costs,
  /// finite non-negative precision targets with min_trials <= max_trials.
  /// Throws zc::ContractViolation naming the offending field; called on
  /// entry to `monte_carlo`.
  void validate() const;
};

/// Run `opts.trials` independent configuration runs, each on a freshly
/// re-randomized network (one reusable context per worker chunk, reset
/// per trial — statistically identical to fresh construction), and
/// aggregate.
[[nodiscard]] MonteCarloResults monte_carlo(const NetworkConfig& network,
                                            const ZeroconfConfig& protocol,
                                            const MonteCarloOptions& opts);

}  // namespace zc::sim
