#include "sim/trace.hpp"

#include <ostream>

#include "common/strings.hpp"

namespace zc::sim {

void TraceLog::attach(Medium& medium) {
  medium.set_observer(
      [this](const DeliveryRecord& record) { records_.push_back(record); });
}

std::size_t TraceLog::losses() const {
  std::size_t lost = 0;
  for (const auto& r : records_)
    if (r.lost) ++lost;
  return lost;
}

std::size_t TraceLog::count(faults::DeliveryCause cause) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.cause == cause) ++n;
  return n;
}

std::vector<DeliveryRecord> TraceLog::for_address(Address address) const {
  std::vector<DeliveryRecord> out;
  for (const auto& r : records_)
    if (packet_address(r.packet) == address) out.push_back(r);
  return out;
}

void TraceLog::print(std::ostream& os, std::size_t max_lines) const {
  std::size_t printed = 0;
  for (const auto& r : records_) {
    if (printed++ >= max_lines) {
      os << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    os << format_record(r) << '\n';
  }
}

std::string format_record(const DeliveryRecord& record) {
  const char* kind = std::holds_alternative<ArpProbe>(record.packet) ? "PROBE"
                     : std::holds_alternative<ArpReply>(record.packet)
                         ? "REPLY"
                         : "ANNC ";
  std::string out = "t=" + zc::format_fixed(record.sent_at, 4) + "  " + kind +
                    " addr=" +
                    std::to_string(packet_address(record.packet)) + "  " +
                    std::to_string(packet_sender(record.packet)) + " -> " +
                    std::to_string(record.target);
  if (record.lost) {
    out += "  LOST";
    // Name the mechanism when it was not the medium's plain random loss
    // (e.g. an injected blackout or burst) so fault traces stay auditable.
    if (record.cause != faults::DeliveryCause::random_loss &&
        record.cause != faults::DeliveryCause::delivered)
      out += std::string(" (") + faults::to_string(record.cause) + ")";
  } else {
    if (record.delivered_at > record.sent_at)
      out += "  delivered t=" + zc::format_fixed(record.delivered_at, 4);
    if (record.cause == faults::DeliveryCause::duplicate ||
        record.cause == faults::DeliveryCause::reordered)
      out += std::string("  [") + faults::to_string(record.cause) + "]";
  }
  return out;
}

}  // namespace zc::sim
