#include "sim/trace.hpp"

#include <ostream>

#include "common/strings.hpp"

namespace zc::sim {

void TraceLog::attach(Medium& medium) {
  medium.set_observer(
      [this](const DeliveryRecord& record) { records_.push_back(record); });
}

std::size_t TraceLog::losses() const {
  std::size_t lost = 0;
  for (const auto& r : records_)
    if (r.lost) ++lost;
  return lost;
}

std::vector<DeliveryRecord> TraceLog::for_address(Address address) const {
  std::vector<DeliveryRecord> out;
  for (const auto& r : records_)
    if (packet_address(r.packet) == address) out.push_back(r);
  return out;
}

void TraceLog::print(std::ostream& os, std::size_t max_lines) const {
  std::size_t printed = 0;
  for (const auto& r : records_) {
    if (printed++ >= max_lines) {
      os << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    os << format_record(r) << '\n';
  }
}

std::string format_record(const DeliveryRecord& record) {
  const bool is_probe = std::holds_alternative<ArpProbe>(record.packet);
  std::string out = "t=" + zc::format_fixed(record.sent_at, 4) + "  " +
                    (is_probe ? "PROBE" : "REPLY") + " addr=" +
                    std::to_string(packet_address(record.packet)) + "  " +
                    std::to_string(packet_sender(record.packet)) + " -> " +
                    std::to_string(record.target);
  if (record.lost) {
    out += "  LOST";
  } else if (record.delivered_at > record.sent_at) {
    out += "  delivered t=" + zc::format_fixed(record.delivered_at, 4);
  }
  return out;
}

}  // namespace zc::sim
