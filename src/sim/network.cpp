#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contract.hpp"
#include "exec/seeding.hpp"

namespace zc::sim {

Network::Network(NetworkConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      medium_(sim_, config_.medium, rng_) {
  ZC_REQUIRE(config_.hosts < config_.address_space,
             "NetworkConfig.hosts must be < address_space");
  ZC_REQUIRE(std::isfinite(config_.max_virtual_time) &&
                 config_.max_virtual_time >= 0.0,
             "NetworkConfig.max_virtual_time must be finite and >= 0");
  if (config_.faults.any()) {
    // Fault randomness lives on its own split stream: the same trial with
    // faults disabled draws exactly the same main-stream values.
    injector_.emplace(config_.faults,
                      exec::split_seed(seed, faults::kFaultSeedStream));
    medium_.set_fault_model(&*injector_);
  } else {
    config_.faults.validate();
  }
  used_bits_.assign(
      static_cast<std::size_t>(config_.address_space >> 6) + 1, 0);
  // All drawn addresses fall in [1, address_space]: size the medium's
  // subscriber-head table once so per-trial subscribes never grow it.
  medium_.reserve_addresses(config_.address_space);
  // Attaching draws no randomness, so building all hosts first and then
  // drawing addresses consumes the RNG exactly like the historical
  // interleaved loop — seeds keep producing the recorded populations.
  hosts_.reserve(config_.hosts);
  for (unsigned k = 0; k < config_.hosts; ++k) {
    const auto& responder =
        config_.responder_mix.empty()
            ? config_.responder_delay
            : config_.responder_mix[k % config_.responder_mix.size()];
    hosts_.emplace_back(sim_, medium_, responder, rng_);
  }
  assign_addresses();
}

void Network::reset(std::uint64_t seed) {
  rng_ = prob::Rng(seed);
  sim_.reset();
  medium_.reset();
  if (injector_.has_value())
    injector_->reseed(exec::split_seed(seed, faults::kFaultSeedStream));
  std::fill(used_bits_.begin(), used_bits_.end(), 0);
  assign_addresses();
}

void Network::assign_addresses() {
  for (ConfiguredHost& host : hosts_) {
    Address addr;
    do {
      addr =
          static_cast<Address>(1 + rng_.uniform_below(config_.address_space));
    } while (is_in_use(addr));
    used_bits_[addr >> 6] |= std::uint64_t{1} << (addr & 63);
    host.reset(addr);
  }
}

void Network::run_events(double start) {
  if (config_.max_virtual_time > 0.0) {
    sim_.run_until(start + config_.max_virtual_time);
  } else {
    // Drain everything the configuration attempt spawned. Late,
    // irrelevant replies may remain scheduled; they execute harmlessly.
    sim_.run();
  }
}

RunResult Network::result_of(ZeroconfHost& joiner, double start) const {
  ZC_ASSERT(joiner.outcome() != Outcome::pending);
  RunResult out;
  out.aborted = joiner.outcome() == Outcome::aborted;
  out.address = joiner.configured_address();
  out.collision = !out.aborted && is_in_use(out.address);
  out.probes_sent = joiner.probes_sent();
  out.attempts = joiner.attempts();
  out.conflicts = joiner.conflicts();
  const core::ProbeSchedule& schedule = joiner.config().schedule;
  out.uniform_schedule = schedule.is_effectively_uniform();
  out.uniform_r = out.uniform_schedule ? schedule.uniform_r() : 0.0;
  out.model_listening = joiner.model_listening();
  out.waiting_time = joiner.waiting_time();
  out.elapsed = joiner.finish_time() - start;
  out.collision_detected = joiner.collision_detected();
  if (out.collision_detected)
    out.detection_latency =
        joiner.collision_detected_at() - joiner.finish_time();
  return out;
}

RunResult Network::run_join(const ZeroconfConfig& protocol) {
  ZeroconfHost joiner(sim_, medium_, config_.address_space, protocol, rng_);
  const double start = sim_.now();
  joiner.start();
  run_events(start);
  // A virtual-time budget may leave the joiner mid-attempt: give up
  // explicitly so the outcome is always terminal.
  joiner.abort();
  return result_of(joiner, start);
}

std::vector<RunResult> Network::run_simultaneous_join(
    const ZeroconfConfig& protocol, unsigned count) {
  ZC_EXPECTS(count >= 1);
  std::vector<std::unique_ptr<ZeroconfHost>> joiners;
  joiners.reserve(count);
  const double start = sim_.now();
  for (unsigned i = 0; i < count; ++i)
    joiners.push_back(std::make_unique<ZeroconfHost>(
        sim_, medium_, config_.address_space, protocol, rng_));
  for (auto& j : joiners) j->start();
  run_events(start);
  for (auto& j : joiners) j->abort();

  // Claimed addresses: collisions can be with configured hosts or among
  // the joiners themselves. Aborted joiners claimed nothing.
  std::unordered_map<Address, unsigned> claims;
  for (auto& j : joiners)
    if (j->outcome() == Outcome::configured) ++claims[j->configured_address()];

  std::vector<RunResult> results;
  results.reserve(count);
  for (auto& j : joiners) {
    RunResult r = result_of(*j, start);
    r.collision = !r.aborted && (is_in_use(r.address) || claims[r.address] > 1);
    results.push_back(r);
  }
  return results;
}

}  // namespace zc::sim
