#include "sim/network.hpp"

#include <unordered_map>

#include "common/contract.hpp"

namespace zc::sim {

Network::Network(NetworkConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      medium_(sim_, config_.medium, rng_) {
  ZC_EXPECTS(config_.hosts < config_.address_space);
  used_.reserve(config_.hosts);
  hosts_.reserve(config_.hosts);
  while (used_.size() < config_.hosts) {
    const auto addr =
        static_cast<Address>(1 + rng_.uniform_below(config_.address_space));
    if (!used_.insert(addr).second) continue;
    const auto& responder =
        config_.responder_mix.empty()
            ? config_.responder_delay
            : config_.responder_mix[hosts_.size() %
                                    config_.responder_mix.size()];
    hosts_.push_back(std::make_unique<ConfiguredHost>(
        sim_, medium_, addr, responder, rng_));
  }
}

RunResult Network::run_join(const ZeroconfConfig& protocol) {
  ZeroconfHost joiner(sim_, medium_, config_.address_space, protocol, rng_);
  const double start = sim_.now();
  joiner.start();
  // Drain everything the configuration attempt spawned. Late, irrelevant
  // replies may remain scheduled; they execute harmlessly.
  sim_.run();
  ZC_ASSERT(joiner.outcome() == Outcome::configured);

  RunResult out;
  out.address = joiner.configured_address();
  out.collision = is_in_use(out.address);
  out.probes_sent = joiner.probes_sent();
  out.attempts = joiner.attempts();
  out.conflicts = joiner.conflicts();
  out.waiting_time = joiner.waiting_time();
  out.elapsed = joiner.finish_time() - start;
  out.collision_detected = joiner.collision_detected();
  if (out.collision_detected)
    out.detection_latency =
        joiner.collision_detected_at() - joiner.finish_time();
  return out;
}

std::vector<RunResult> Network::run_simultaneous_join(
    const ZeroconfConfig& protocol, unsigned count) {
  ZC_EXPECTS(count >= 1);
  std::vector<std::unique_ptr<ZeroconfHost>> joiners;
  joiners.reserve(count);
  const double start = sim_.now();
  for (unsigned i = 0; i < count; ++i)
    joiners.push_back(std::make_unique<ZeroconfHost>(
        sim_, medium_, config_.address_space, protocol, rng_));
  for (auto& j : joiners) j->start();
  sim_.run();

  // Claimed addresses: collisions can be with configured hosts or among
  // the joiners themselves.
  std::unordered_map<Address, unsigned> claims;
  for (auto& j : joiners) {
    ZC_ASSERT(j->outcome() == Outcome::configured);
    ++claims[j->configured_address()];
  }

  std::vector<RunResult> results;
  results.reserve(count);
  for (auto& j : joiners) {
    RunResult r;
    r.address = j->configured_address();
    r.collision = is_in_use(r.address) || claims[r.address] > 1;
    r.probes_sent = j->probes_sent();
    r.attempts = j->attempts();
    r.conflicts = j->conflicts();
    r.waiting_time = j->waiting_time();
    r.elapsed = j->finish_time() - start;
    r.collision_detected = j->collision_detected();
    if (r.collision_detected)
      r.detection_latency = j->collision_detected_at() - j->finish_time();
    results.push_back(r);
  }
  return results;
}

}  // namespace zc::sim
