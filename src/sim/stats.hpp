#pragma once

/// \file stats.hpp
/// Streaming statistics for Monte-Carlo estimation: Welford mean/variance
/// accumulation and confidence intervals (Student-t below 31 samples,
/// normal approximation beyond).

#include <cmath>
#include <cstddef>
#include <limits>

#include "common/contract.hpp"

namespace zc::sim {

/// Two-sided 95% critical value of Student's t with `df` degrees of
/// freedom (the 97.5th percentile). Exact table for df <= 30; beyond
/// that the normal value 1.96 is within 0.2% and keeps large-count
/// intervals bit-compatible with the historical normal approximation.
/// df == 0 (fewer than two samples) has no defined interval: NaN.
[[nodiscard]] inline double t_critical_95(std::size_t df) noexcept {
  static constexpr double kTable[30] = {
      12.706204736432095, 4.302652729911275, 3.182446305284263,
      2.7764451051977987, 2.5705818366147395, 2.4469118487916806,
      2.3646242510102993, 2.3060041350333704, 2.2621571627409915,
      2.2281388519862735, 2.2009851600829489, 2.1788128296634177,
      2.1603686564610127, 2.1447866879169273, 2.1314495455597763,
      2.1199052992210112, 2.1098155778331806, 2.1009220402409601,
      2.0930240544082634, 2.0859634472658364, 2.0796138447276626,
      2.0738730679040147, 2.0686576104190406, 2.0638985616280205,
      2.0595385527532946, 2.0555294386428713, 2.0518305164802833,
      2.0484071417952441, 2.0452296421327034, 2.0422724563012373};
  if (df == 0) return std::numeric_limits<double>::quiet_NaN();
  if (df <= 30) return kTable[df - 1];
  return 1.959963984540054;
}

/// Welford online accumulator: numerically stable mean and variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Fold another accumulator into this one (Chan et al.'s pairwise
  /// mean/M2 combination), as if this accumulator had also seen every
  /// sample the other did. The workhorse of parallel reduction: chunk
  /// accumulators merge in chunk order, giving results independent of
  /// which thread ran which chunk.
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double n = n_a + n_b;
    const double delta = other.mean_ - mean_;
    mean_ += delta * (n_b / n);
    m2_ += other.m2_ + delta * delta * (n_a * n_b / n);
    count_ += other.count_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

  /// Standard error of the mean.
  [[nodiscard]] double std_error() const noexcept {
    return count_ == 0 ? 0.0
                       : stddev() / std::sqrt(static_cast<double>(count_));
  }

  /// Half-width of the 95% confidence interval on the mean: Student-t
  /// critical value (normal beyond 30 df) times the standard error.
  /// NaN below two samples — one observation carries *no* width
  /// information, and the old 0 read as "infinitely precise" to any
  /// precision-targeted stopping rule. Serializers degrade the NaN to
  /// null (obs::write_json_number), never to a claim of certainty.
  [[nodiscard]] double ci95_halfwidth() const noexcept {
    if (count_ < 2) return std::numeric_limits<double>::quiet_NaN();
    return t_critical_95(count_ - 1) * std_error();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Wilson 95% confidence interval for a binomial proportion; much better
/// than the normal approximation for rare events (collisions).
struct ProportionCi {
  double lower = 0.0;
  double upper = 0.0;
};

[[nodiscard]] inline ProportionCi wilson_ci95(std::size_t successes,
                                              std::size_t trials) {
  ZC_EXPECTS(successes <= trials);
  // No data constrains nothing: the maximally-uninformative [0, 1]
  // instead of a hard abort, so degenerate campaigns (every trial
  // cancelled or safety-capped) stay reportable.
  if (trials == 0) return {0.0, 1.0};
  const double z = 1.959963984540054;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::fmax(0.0, center - half), std::fmin(1.0, center + half)};
}

}  // namespace zc::sim
