#pragma once

/// \file stats.hpp
/// Streaming statistics for Monte-Carlo estimation: Welford mean/variance
/// accumulation and normal-approximation confidence intervals.

#include <cmath>
#include <cstddef>

#include "common/contract.hpp"

namespace zc::sim {

/// Welford online accumulator: numerically stable mean and variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Fold another accumulator into this one (Chan et al.'s pairwise
  /// mean/M2 combination), as if this accumulator had also seen every
  /// sample the other did. The workhorse of parallel reduction: chunk
  /// accumulators merge in chunk order, giving results independent of
  /// which thread ran which chunk.
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double n = n_a + n_b;
    const double delta = other.mean_ - mean_;
    mean_ += delta * (n_b / n);
    m2_ += other.m2_ + delta * delta * (n_a * n_b / n);
    count_ += other.count_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

  /// Standard error of the mean.
  [[nodiscard]] double std_error() const noexcept {
    return count_ == 0 ? 0.0
                       : stddev() / std::sqrt(static_cast<double>(count_));
  }

  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept {
    return 1.959963984540054 * std_error();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Wilson 95% confidence interval for a binomial proportion; much better
/// than the normal approximation for rare events (collisions).
struct ProportionCi {
  double lower = 0.0;
  double upper = 0.0;
};

[[nodiscard]] inline ProportionCi wilson_ci95(std::size_t successes,
                                              std::size_t trials) {
  ZC_EXPECTS(trials > 0);
  ZC_EXPECTS(successes <= trials);
  const double z = 1.959963984540054;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::fmax(0.0, center - half), std::fmin(1.0, center + half)};
}

}  // namespace zc::sim
