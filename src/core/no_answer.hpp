#pragma once

/// \file no_answer.hpp
/// The no-answer probabilities of Sec. 3.2. Eq. (1) defines
///
///   p_i(r) = P(i, r) = prod_{j=1}^{i} ( 1 - (F(jr)-F((j-1)r)) /
///                                           (1 - F((j-1)r)) )
///
/// Each factor equals S(jr)/S((j-1)r) with S = 1-F, so the product
/// telescopes to p_i(r) = S(i r) — the survival form, which is also the
/// numerically robust one (no cancellation against 1). Both forms are
/// implemented; tests assert their agreement.
///
/// The model's path probabilities are pi_i(r) = prod_{j=0}^{i} p_j(r)
/// (with p_0 = 1), i.e. pi_i(r) = prod_{j=1}^{i} S(j r).

#include <vector>

#include "core/schedule.hpp"
#include "prob/delay.hpp"

namespace zc::core {

/// p_i(r) via the literal Eq. (1) product. Intended for validation; use
/// `no_answer_probability` in computations.
[[nodiscard]] double no_answer_probability_product(
    const prob::DelayDistribution& fx, unsigned i, double r);

/// p_i(r) via the telescoped survival form S(i r); p_0 = 1.
[[nodiscard]] double no_answer_probability(const prob::DelayDistribution& fx,
                                           unsigned i, double r);

/// pi_0..pi_n: pi_i(r) = prod_{j=1}^{i} S(j r); result has size n+1 with
/// pi[0] = 1. Multiplications ordered largest-first are benign here since
/// every factor is in (0, 1]; underflow cannot occur before the true value
/// drops below DBL_MIN (loss >= 1e-15 keeps pi_n >= 1e-15n).
[[nodiscard]] std::vector<double> pi_values(const prob::DelayDistribution& fx,
                                            unsigned n, double r);

/// log pi_n(r) = sum_{j=1}^{n} log S(j r); log-domain cross-check path.
[[nodiscard]] double log_pi(const prob::DelayDistribution& fx, unsigned n,
                            double r);

/// Schedule generalization: p_i = S(t_i) with t_i the cumulative
/// listening time r_1 + ... + r_i. Uniform schedules evaluate S(i * r)
/// bit-identically to `no_answer_probability(fx, i, r)`.
[[nodiscard]] double no_answer_probability(const prob::DelayDistribution& fx,
                                           const ProbeSchedule& schedule,
                                           unsigned i);

/// pi_0..pi_n for a schedule: pi_i = prod_{j=1}^{i} S(t_j); size n+1,
/// pi[0] = 1. Bit-identical to `pi_values(fx, n, r)` for uniform(n, r).
[[nodiscard]] std::vector<double> pi_values(const prob::DelayDistribution& fx,
                                            const ProbeSchedule& schedule);

/// log pi_n for a schedule: sum_{j=1}^{n} log S(t_j).
[[nodiscard]] double log_pi(const prob::DelayDistribution& fx,
                            const ProbeSchedule& schedule);

}  // namespace zc::core
