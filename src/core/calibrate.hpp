#pragma once

/// \file calibrate.hpp
/// The inverse problem of Sec. 4.5: for a fixed pessimistic network
/// scenario (q, loss, lambda, d) and a *target* protocol configuration
/// (n*, r*) — the draft's (4, 2) or (4, 0.2) — find the cost parameters
/// (E, c) under which the target is cost-optimal.
///
/// Two conditions pin the two unknowns:
///   (i)  stationarity:  dC_{n*}/dr (r*) = 0   — r* is the optimal
///        listening period for n*;
///   (ii) n-optimality boundary:  C_{n*}(r*) = min_{k != n*} C_k(r_opt(k))
///        — the target probe count just ties its best competitor, making
///        n* the (marginally) optimal choice.
///
/// Structure of the solve: for fixed c, condition (i) is monotone in E
/// (a larger collision cost pushes the stationary point right), so E(c)
/// is found by bracketed root search in log10 E; the outer root search on
/// c enforces (ii).

#include <optional>

#include "core/optimize.hpp"
#include "core/params.hpp"

namespace zc::core {

/// Result of a calibration.
struct Calibration {
  double error_cost = 0.0;   ///< E
  double probe_cost = 0.0;   ///< c
  unsigned competitor = 0;   ///< the k that ties C_{n*}(r*) at the solution
  double target_cost = 0.0;  ///< C_{n*}(r*) at the calibrated parameters
  bool target_is_optimal = false;  ///< verification: joint optimum == target
};

/// Options bounding the search.
struct CalibrateOptions {
  double log10_e_min = 3.0;    ///< search E in [10^min, 10^max]
  double log10_e_max = 60.0;
  double c_min = 1e-3;         ///< search c in [c_min, c_max]
  double c_max = 100.0;
  unsigned n_max = 12;         ///< competitors considered
  ROptOptions r_opts{};        ///< per-n r-optimization settings
};

/// Calibrate (E, c) so that `target` is the cost-optimal configuration for
/// `scenario` (whose E and c fields are ignored). The returned c is the
/// lower boundary of the probe-cost window on which the target stays
/// optimal (tie against the strongest competitor); when that window
/// extends below the search box, the smallest feasible c is returned.
/// Returns nullopt when no (E, c) in the box makes the target optimal.
[[nodiscard]] std::optional<Calibration> calibrate(
    const ScenarioParams& scenario, const ProtocolParams& target,
    const CalibrateOptions& opts = {});

/// Condition (i) alone: the E making r* stationary for n*, at the given c.
/// Returns nullopt when no bracket exists in the E search range.
[[nodiscard]] std::optional<double> error_cost_for_stationary_r(
    const ScenarioParams& scenario, const ProtocolParams& target, double c,
    const CalibrateOptions& opts = {});

}  // namespace zc::core
