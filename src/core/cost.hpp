#pragma once

/// \file cost.hpp
/// The mean total initialization cost C(n, r) (Sec. 4). The analytic
/// closed form Eq. (3),
///
///            (r+c) ( n(1-q) + q sum_{i=0}^{n-1} pi_i(r) ) + q E pi_n(r)
///   C(n,r) = ---------------------------------------------------------
///                          1 - q (1 - pi_n(r))
///
/// plus the numeric route through the DRM linear system Eq. (2) (used as a
/// cross-check), the r->inf asymptote A_n(r) of Sec. 4.2, the r=0 limit
/// C_n(0) = qE, cost derivatives and — beyond the paper — the variance of
/// the total cost.

#include "core/params.hpp"

namespace zc::core {

/// Mean total cost via the analytic Eq. (3).
[[nodiscard]] double mean_cost(const ScenarioParams& scenario,
                               const ProtocolParams& protocol);

/// Mean total cost by solving the DRM linear system (Eq. (2)) with LU;
/// must agree with mean_cost to solver precision.
[[nodiscard]] double mean_cost_numeric(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

/// The asymptote A_n(r) the cost approaches as r -> inf (Sec. 4.2):
///   A_n(r) = (r+c) ( n(1-q) + q (1-(1-l)^n)/l ) / (1-q).
[[nodiscard]] double cost_asymptote(const ScenarioParams& scenario,
                                    const ProtocolParams& protocol);

/// The r = 0 limit: C_n(0) = q E.
[[nodiscard]] double cost_at_zero_r(const ScenarioParams& scenario);

/// dC/dr at fixed n (numeric, Richardson-extrapolated central difference).
[[nodiscard]] double cost_derivative_r(const ScenarioParams& scenario,
                                       unsigned n, double r);

/// Variance of the total cost (extension beyond the paper; via the DRM
/// second-moment system).
[[nodiscard]] double cost_variance(const ScenarioParams& scenario,
                                   const ProtocolParams& protocol);

/// Mean total cost *conditioned on a clean outcome* (absorption in `ok`):
/// the cost experienced by the overwhelming majority of users (extension
/// beyond the paper).
[[nodiscard]] double mean_cost_given_ok(const ScenarioParams& scenario,
                                        const ProtocolParams& protocol);

/// Mean total cost conditioned on an address collision (absorption in
/// `error`): the disaster-path cost, dominated by E.
[[nodiscard]] double mean_cost_given_error(const ScenarioParams& scenario,
                                           const ProtocolParams& protocol);

/// Mean number of *rounds* (probe cycles through `start`) until the
/// protocol terminates; derived from expected visits in the DRM.
[[nodiscard]] double mean_address_attempts(const ScenarioParams& scenario,
                                           const ProtocolParams& protocol);

/// Mean configuration latency in seconds: like mean_cost but counting only
/// the waiting time r per probe (postage and error cost set to zero).
/// This is the user-perceived configuration delay for successful runs.
[[nodiscard]] double mean_waiting_time(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

}  // namespace zc::core
