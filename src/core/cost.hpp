#pragma once

/// \file cost.hpp
/// The mean total initialization cost C(n, r) (Sec. 4). The analytic
/// closed form Eq. (3),
///
///            (r+c) ( n(1-q) + q sum_{i=0}^{n-1} pi_i(r) ) + q E pi_n(r)
///   C(n,r) = ---------------------------------------------------------
///                          1 - q (1 - pi_n(r))
///
/// plus the numeric route through the DRM linear system Eq. (2) (used as a
/// cross-check), the r->inf asymptote A_n(r) of Sec. 4.2, the r=0 limit
/// C_n(0) = qE, cost derivatives and — beyond the paper — the variance of
/// the total cost.

#include "core/params.hpp"

namespace zc::core {

/// Mean total cost via the analytic Eq. (3).
[[nodiscard]] double mean_cost(const ScenarioParams& scenario,
                               const ProtocolParams& protocol);

/// Mean total cost by solving the DRM linear system (Eq. (2)) with LU;
/// must agree with mean_cost to solver precision.
[[nodiscard]] double mean_cost_numeric(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

/// The asymptote A_n(r) the cost approaches as r -> inf (Sec. 4.2):
///   A_n(r) = (r+c) ( n(1-q) + q (1-(1-l)^n)/l ) / (1-q).
[[nodiscard]] double cost_asymptote(const ScenarioParams& scenario,
                                    const ProtocolParams& protocol);

/// The r = 0 limit: C_n(0) = q E.
[[nodiscard]] double cost_at_zero_r(const ScenarioParams& scenario);

/// dC/dr at fixed n (numeric, Richardson-extrapolated central difference).
[[nodiscard]] double cost_derivative_r(const ScenarioParams& scenario,
                                       unsigned n, double r);

/// Variance of the total cost (extension beyond the paper; via the DRM
/// second-moment system).
[[nodiscard]] double cost_variance(const ScenarioParams& scenario,
                                   const ProtocolParams& protocol);

/// Mean total cost *conditioned on a clean outcome* (absorption in `ok`):
/// the cost experienced by the overwhelming majority of users (extension
/// beyond the paper).
[[nodiscard]] double mean_cost_given_ok(const ScenarioParams& scenario,
                                        const ProtocolParams& protocol);

/// Mean total cost conditioned on an address collision (absorption in
/// `error`): the disaster-path cost, dominated by E.
[[nodiscard]] double mean_cost_given_error(const ScenarioParams& scenario,
                                           const ProtocolParams& protocol);

/// Mean number of *rounds* (probe cycles through `start`) until the
/// protocol terminates; derived from expected visits in the DRM.
[[nodiscard]] double mean_address_attempts(const ScenarioParams& scenario,
                                           const ProtocolParams& protocol);

/// Mean configuration latency in seconds: like mean_cost but counting only
/// the waiting time r per probe (postage and error cost set to zero).
/// This is the user-perceived configuration delay for successful runs.
[[nodiscard]] double mean_waiting_time(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

/// Schedule generalization of Eq. (3): with t_i = r_1 + ... + r_i and
/// pi_i = prod_{j<=i} S(t_j),
///
///       (1-q) sum_{i=1}^{n} (r_i+c) + q sum_{i=0}^{n-1} pi_i (r_{i+1}+c)
///       + q E pi_n
///   C = ----------------------------------------------------------------
///                          1 - q (1 - pi_n)
///
/// which collapses to Eq. (3) for r_i = r. Uniform schedules take the
/// historical arithmetic path and are bit-identical to
/// `mean_cost(scenario, ProtocolParams{n, r})`.
[[nodiscard]] double mean_cost(const ScenarioParams& scenario,
                               const ProbeSchedule& schedule);

/// Schedule mean cost via the (non-homogeneous) DRM linear system.
[[nodiscard]] double mean_cost_numeric(const ScenarioParams& scenario,
                                       const ProbeSchedule& schedule);

/// Variance of the total cost for a schedule (DRM second-moment system).
[[nodiscard]] double cost_variance(const ScenarioParams& scenario,
                                   const ProbeSchedule& schedule);

/// Conditional means and attempt counts for a schedule (DRM route).
[[nodiscard]] double mean_cost_given_ok(const ScenarioParams& scenario,
                                        const ProbeSchedule& schedule);
[[nodiscard]] double mean_cost_given_error(const ScenarioParams& scenario,
                                           const ProbeSchedule& schedule);
[[nodiscard]] double mean_address_attempts(const ScenarioParams& scenario,
                                           const ProbeSchedule& schedule);

/// Mean configuration latency for a schedule (c = 0, E = 0).
[[nodiscard]] double mean_waiting_time(const ScenarioParams& scenario,
                                       const ProbeSchedule& schedule);

}  // namespace zc::core
