#include "core/cost.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "core/drm.hpp"
#include "core/no_answer.hpp"
#include "numerics/derivative.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

double mean_cost(const ScenarioParams& scenario,
                 const ProtocolParams& protocol) {
  protocol.validate(/*allow_zero_r=*/true);
  const unsigned n = protocol.n;
  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), n, protocol.r);

  numerics::KahanSum pi_partial;  // sum_{i=0}^{n-1} pi_i(r)
  for (unsigned i = 0; i < n; ++i) pi_partial.add(pi[i]);

  const double per_probe = protocol.r + scenario.probe_cost();
  const double numerator =
      per_probe * (static_cast<double>(n) * (1.0 - q) + q * pi_partial.value()) +
      q * scenario.error_cost() * pi[n];
  const double denominator = 1.0 - q * (1.0 - pi[n]);
  ZC_ASSERT(denominator > 0.0);
  return numerator / denominator;
}

double mean_cost_numeric(const ScenarioParams& scenario,
                         const ProtocolParams& protocol) {
  const markov::MarkovRewardModel drm = build_drm(scenario, protocol);
  return drm.expected_total_reward(DrmLayout::start());
}

double cost_asymptote(const ScenarioParams& scenario,
                      const ProtocolParams& protocol) {
  const unsigned n = protocol.n;
  const double q = scenario.q();
  const double loss = scenario.reply_delay().loss_probability();
  const double arrival = 1.0 - loss;  // l
  // (1 - (1-l)^n) / l -> n as l -> 0 (all-lost limit handled separately).
  double geom;
  if (arrival == 0.0) {
    geom = static_cast<double>(n);
  } else {
    geom = -std::expm1(static_cast<double>(n) * std::log(loss)) / arrival;
  }
  const double per_probe = protocol.r + scenario.probe_cost();
  return per_probe * (static_cast<double>(n) * (1.0 - q) + q * geom) /
         (1.0 - q);
}

double cost_at_zero_r(const ScenarioParams& scenario) {
  return scenario.q() * scenario.error_cost();
}

double cost_derivative_r(const ScenarioParams& scenario, unsigned n,
                         double r) {
  ZC_EXPECTS(r > 0.0);
  return numerics::richardson_derivative(
      [&](double rr) {
        return mean_cost(scenario, ProtocolParams{n, rr});
      },
      r);
}

double cost_variance(const ScenarioParams& scenario,
                     const ProtocolParams& protocol) {
  const markov::MarkovRewardModel drm = build_drm(scenario, protocol);
  return drm.variance_total_reward(DrmLayout::start());
}

double mean_cost_given_ok(const ScenarioParams& scenario,
                          const ProtocolParams& protocol) {
  const markov::MarkovRewardModel drm = build_drm(scenario, protocol);
  const DrmLayout layout{protocol.n};
  return drm.expected_total_reward_given_absorption(DrmLayout::start(),
                                                    layout.ok());
}

double mean_cost_given_error(const ScenarioParams& scenario,
                             const ProtocolParams& protocol) {
  const markov::MarkovRewardModel drm = build_drm(scenario, protocol);
  const DrmLayout layout{protocol.n};
  return drm.expected_total_reward_given_absorption(DrmLayout::start(),
                                                    layout.error());
}

double mean_address_attempts(const ScenarioParams& scenario,
                             const ProtocolParams& protocol) {
  const markov::MarkovRewardModel drm = build_drm(scenario, protocol);
  // Expected visits to `start` before absorption = expected number of
  // address-selection rounds.
  return drm.analysis().expected_visits(DrmLayout::start(),
                                        DrmLayout::start());
}

double mean_waiting_time(const ScenarioParams& scenario,
                         const ProtocolParams& protocol) {
  // Same Eq. (3) with c = 0, E = 0: only listening time accumulates.
  const ScenarioParams time_only =
      scenario.with_probe_cost(0.0).with_error_cost(0.0);
  return mean_cost(time_only, protocol);
}

double mean_cost(const ScenarioParams& scenario,
                 const ProbeSchedule& schedule) {
  // Uniform: the pre-schedule Eq. (3) arithmetic, verbatim — byte
  // compatibility is part of the contract.
  if (schedule.is_effectively_uniform())
    return mean_cost(scenario,
                     ProtocolParams{schedule.n(), schedule.uniform_r()});
  schedule.validate(/*allow_zero_r=*/true);
  const unsigned n = schedule.n();
  const double q = scenario.q();
  const double c = scenario.probe_cost();
  const auto pi = pi_values(scenario.reply_delay(), schedule);

  // Free address (prob. 1-q per attempt): every probe waits out its own
  // window -> sum_i (r_i + c). Occupied address: probe i+1 is only sent
  // if the first i went unanswered (prob. pi_i) -> sum pi_i (r_{i+1}+c).
  numerics::KahanSum full_pass;
  numerics::KahanSum reached;
  for (unsigned i = 0; i < n; ++i) {
    const double per_probe = schedule.timeout(i + 1) + c;
    full_pass.add(per_probe);
    reached.add(pi[i] * per_probe);
  }
  const double numerator = (1.0 - q) * full_pass.value() +
                           q * reached.value() +
                           q * scenario.error_cost() * pi[n];
  const double denominator = 1.0 - q * (1.0 - pi[n]);
  ZC_ASSERT(denominator > 0.0);
  return numerator / denominator;
}

double mean_cost_numeric(const ScenarioParams& scenario,
                         const ProbeSchedule& schedule) {
  const markov::MarkovRewardModel drm = build_drm(scenario, schedule);
  return drm.expected_total_reward(DrmLayout::start());
}

double cost_variance(const ScenarioParams& scenario,
                     const ProbeSchedule& schedule) {
  const markov::MarkovRewardModel drm = build_drm(scenario, schedule);
  return drm.variance_total_reward(DrmLayout::start());
}

double mean_cost_given_ok(const ScenarioParams& scenario,
                          const ProbeSchedule& schedule) {
  const markov::MarkovRewardModel drm = build_drm(scenario, schedule);
  const DrmLayout layout{schedule.n()};
  return drm.expected_total_reward_given_absorption(DrmLayout::start(),
                                                    layout.ok());
}

double mean_cost_given_error(const ScenarioParams& scenario,
                             const ProbeSchedule& schedule) {
  const markov::MarkovRewardModel drm = build_drm(scenario, schedule);
  const DrmLayout layout{schedule.n()};
  return drm.expected_total_reward_given_absorption(DrmLayout::start(),
                                                    layout.error());
}

double mean_address_attempts(const ScenarioParams& scenario,
                             const ProbeSchedule& schedule) {
  const markov::MarkovRewardModel drm = build_drm(scenario, schedule);
  return drm.analysis().expected_visits(DrmLayout::start(),
                                        DrmLayout::start());
}

double mean_waiting_time(const ScenarioParams& scenario,
                         const ProbeSchedule& schedule) {
  const ScenarioParams time_only =
      scenario.with_probe_cost(0.0).with_error_cost(0.0);
  return mean_cost(time_only, schedule);
}

}  // namespace zc::core
