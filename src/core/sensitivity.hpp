#pragma once

/// \file sensitivity.hpp
/// Local sensitivity analysis (Sec. 4.2 mentions it as the "standard
/// exercise"; Sec. 7 stresses that the optimized parameters depend on
/// application-specific inputs that are hard to predict). For an
/// exponential-family scenario we report the elasticity of the mean cost
/// and of the collision probability with respect to each model input:
///
///   elasticity(f, p) = (dF/dp) * (p / F)   — the % change in f per %
///   change in p, estimated by central differences.

#include <string>
#include <vector>

#include "core/params.hpp"

namespace zc::core {

/// Elasticity of one output w.r.t. one input parameter.
struct Elasticity {
  std::string parameter;  ///< "q", "c", "E", "loss", "lambda", "d", "r"
  double cost_elasticity = 0.0;   ///< on the mean cost C(n, r)
  double error_elasticity = 0.0;  ///< on the collision probability
};

/// All elasticities of the model at the operating point (scenario,
/// protocol). `rel_step` is the relative perturbation used in the central
/// differences.
[[nodiscard]] std::vector<Elasticity> sensitivities(
    const ExponentialScenario& scenario, const ProtocolParams& protocol,
    double rel_step = 1e-4);

/// How far the *optimal* configuration moves when one input parameter is
/// scaled: re-runs the joint optimization at parameter * factor.
struct OptimumShift {
  std::string parameter;
  double factor = 1.0;
  unsigned n = 0;
  double r = 0.0;
  double cost = 0.0;
};

[[nodiscard]] std::vector<OptimumShift> optimum_shifts(
    const ExponentialScenario& scenario, const std::string& parameter,
    const std::vector<double>& factors, unsigned n_max = 16);

}  // namespace zc::core
