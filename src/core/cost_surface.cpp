#include "core/cost_surface.hpp"

#include <utility>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

namespace {

/// Incremental column walker over a survival provider. Extends the
/// ladder one rung per step and hands `visit` the pieces every per-n
/// quantity is built from: pi_partial = sum_{i=0}^{n-1} pi_i(r)
/// (compensated, same add order as mean_cost's KahanSum) and pi_n(r)
/// (same product order as pi_values). `survival_at(n)` must return
/// S(n r); whether it is computed on the fly or read from a precomputed
/// SurvivalLadder, the consuming arithmetic is identical — which is the
/// bitwise-equality guarantee the ladder overloads rely on.
/// `visit` returns false to stop early.
template <typename SurvivalAt, typename Visit>
void walk_pieces(unsigned n_max, SurvivalAt&& survival_at, Visit&& visit) {
  numerics::KahanSum pi_partial;
  double pi = 1.0;  // pi_0
  for (unsigned n = 1; n <= n_max; ++n) {
    pi_partial.add(pi);  // adds pi_{n-1}; prefix of mean_cost's loop
    pi = pi * survival_at(n);  // pi_n
    if (!visit(n, pi_partial.value(), pi)) return;
  }
}

template <typename Visit>
void walk_column(const ScenarioParams& scenario, unsigned n_max, double r,
                 Visit&& visit) {
  const prob::DelayDistribution& fx = scenario.reply_delay();
  walk_pieces(
      n_max,
      [&](unsigned n) { return fx.survival(static_cast<double>(n) * r); },
      std::forward<Visit>(visit));
}

double cost_from_pieces(const ScenarioParams& scenario, unsigned n, double r,
                        double pi_partial, double pi_n) {
  // Verbatim arithmetic of cost.cpp's mean_cost numerator/denominator.
  const double q = scenario.q();
  const double per_probe = r + scenario.probe_cost();
  const double numerator =
      per_probe * (static_cast<double>(n) * (1.0 - q) + q * pi_partial) +
      q * scenario.error_cost() * pi_n;
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return numerator / denominator;
}

double error_from_pieces(const ScenarioParams& scenario, double pi_n) {
  // Verbatim arithmetic of reliability.cpp's error_probability.
  const double q = scenario.q();
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return q * pi_n / denominator;
}

/// Schedule walker: extends the generalized Eq. (3) pieces one probe at
/// a time. full_pass_m = sum_{i<=m} (r_i + c) and
/// reached_m = sum_{i=0}^{m-1} pi_i (r_{i+1} + c), both compensated with
/// the same add order as the schedule mean_cost, so each visited prefix
/// reproduces mean_cost(scenario, prefix_m) bitwise.
/// `survival_at(m)` must return S(t_m).
template <typename SurvivalAt, typename Visit>
void walk_schedule_pieces(const ScenarioParams& scenario,
                          const ProbeSchedule& schedule,
                          SurvivalAt&& survival_at, Visit&& visit) {
  const double c = scenario.probe_cost();
  numerics::KahanSum full_pass;
  numerics::KahanSum reached;
  double pi = 1.0;  // pi_0
  for (unsigned m = 1; m <= schedule.n(); ++m) {
    const double per_probe = schedule.timeout(m) + c;
    full_pass.add(per_probe);
    reached.add(pi * per_probe);  // pi_{m-1} (r_m + c)
    pi = pi * survival_at(m);     // pi_m
    if (!visit(m, full_pass.value(), reached.value(), pi)) return;
  }
}

double cost_from_schedule_pieces(const ScenarioParams& scenario,
                                 double full_pass, double reached,
                                 double pi_n) {
  // Verbatim arithmetic of cost.cpp's schedule mean_cost.
  const double q = scenario.q();
  const double numerator = (1.0 - q) * full_pass + q * reached +
                           q * scenario.error_cost() * pi_n;
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return numerator / denominator;
}

}  // namespace

CostSurface::CostSurface(ScenarioParams scenario, unsigned n_max)
    : scenario_(std::move(scenario)), n_max_(n_max) {
  ZC_EXPECTS(n_max >= 1);
}

CostSurface::SurvivalLadder CostSurface::make_ladder(
    const prob::DelayDistribution& fx, unsigned n_max, double r) {
  ZC_EXPECTS(n_max >= 1);
  ZC_EXPECTS(r >= 0.0);
  SurvivalLadder ladder;
  ladder.r = r;
  ladder.survival.resize(n_max);
  // Same expression as walk_column's on-the-fly rung, so the stored
  // doubles are the identical values the direct path consumes.
  for (unsigned n = 1; n <= n_max; ++n)
    ladder.survival[n - 1] = fx.survival(static_cast<double>(n) * r);
  return ladder;
}

CostSurface::SurvivalLadder CostSurface::make_ladder(
    const prob::DelayDistribution& fx, const ProbeSchedule& schedule) {
  ZC_EXPECTS(schedule.n() >= 1);
  SurvivalLadder ladder;
  ladder.r = schedule.timeout(1);
  ladder.survival.resize(schedule.n());
  // cumulative() is `k * r` for uniform schedules, so the stored doubles
  // coincide with make_ladder(fx, n, r) there.
  for (unsigned k = 1; k <= schedule.n(); ++k)
    ladder.survival[k - 1] = fx.survival(schedule.cumulative(k));
  return ladder;
}

CostSurface::SurvivalLadder CostSurface::ladder(double r) const {
  return make_ladder(scenario_.reply_delay(), n_max_, r);
}

std::vector<double> CostSurface::cost_column(
    const ProbeSchedule& schedule) const {
  const prob::DelayDistribution& fx = scenario_.reply_delay();
  std::vector<double> out(schedule.n());
  if (schedule.is_effectively_uniform()) {
    // Historical uniform arithmetic over prefix lengths 1..n.
    const double r = schedule.uniform_r();
    walk_pieces(
        schedule.n(),
        [&](unsigned n) { return fx.survival(static_cast<double>(n) * r); },
        [&](unsigned n, double pi_partial, double pi_n) {
          out[n - 1] = cost_from_pieces(scenario_, n, r, pi_partial, pi_n);
          return true;
        });
    return out;
  }
  walk_schedule_pieces(
      scenario_, schedule,
      [&](unsigned m) { return fx.survival(schedule.cumulative(m)); },
      [&](unsigned m, double full_pass, double reached, double pi_m) {
        out[m - 1] =
            cost_from_schedule_pieces(scenario_, full_pass, reached, pi_m);
        return true;
      });
  return out;
}

std::vector<double> CostSurface::error_column(
    const ProbeSchedule& schedule) const {
  const prob::DelayDistribution& fx = scenario_.reply_delay();
  std::vector<double> out(schedule.n());
  if (schedule.is_effectively_uniform()) {
    const double r = schedule.uniform_r();
    walk_pieces(
        schedule.n(),
        [&](unsigned n) { return fx.survival(static_cast<double>(n) * r); },
        [&](unsigned n, double, double pi_n) {
          out[n - 1] = error_from_pieces(scenario_, pi_n);
          return true;
        });
    return out;
  }
  walk_schedule_pieces(
      scenario_, schedule,
      [&](unsigned m) { return fx.survival(schedule.cumulative(m)); },
      [&](unsigned m, double, double, double pi_m) {
        out[m - 1] = error_from_pieces(scenario_, pi_m);
        return true;
      });
  return out;
}

double CostSurface::cost_at(const ProbeSchedule& schedule) const {
  return cost_column(schedule).back();
}

double CostSurface::error_at(const ProbeSchedule& schedule) const {
  return error_column(schedule).back();
}

std::vector<double> CostSurface::cost_column(double r) const {
  ZC_EXPECTS(r >= 0.0);
  std::vector<double> out(n_max_);
  walk_column(scenario_, n_max_, r,
              [&](unsigned n, double pi_partial, double pi_n) {
                out[n - 1] = cost_from_pieces(scenario_, n, r, pi_partial, pi_n);
                return true;
              });
  return out;
}

std::vector<double> CostSurface::error_column(double r) const {
  ZC_EXPECTS(r >= 0.0);
  std::vector<double> out(n_max_);
  walk_column(scenario_, n_max_, r,
              [&](unsigned n, double, double pi_n) {
                out[n - 1] = error_from_pieces(scenario_, pi_n);
                return true;
              });
  return out;
}

std::vector<double> CostSurface::cost_column(
    const SurvivalLadder& ladder) const {
  ZC_EXPECTS(ladder.survival.size() >= n_max_);
  std::vector<double> out(n_max_);
  walk_pieces(n_max_, [&](unsigned n) { return ladder.survival[n - 1]; },
              [&](unsigned n, double pi_partial, double pi_n) {
                out[n - 1] =
                    cost_from_pieces(scenario_, n, ladder.r, pi_partial, pi_n);
                return true;
              });
  return out;
}

std::vector<double> CostSurface::error_column(
    const SurvivalLadder& ladder) const {
  ZC_EXPECTS(ladder.survival.size() >= n_max_);
  std::vector<double> out(n_max_);
  walk_pieces(n_max_, [&](unsigned n) { return ladder.survival[n - 1]; },
              [&](unsigned n, double, double pi_n) {
                out[n - 1] = error_from_pieces(scenario_, pi_n);
                return true;
              });
  return out;
}

CostSurface::ColumnMin CostSurface::min_over_n(double r) const {
  ZC_EXPECTS(r >= 0.0);
  // Same decision sequence as the former O(n_max^2) optimal_n scan: track
  // the best cost, stop after 8 consecutive rises.
  ColumnMin best;
  unsigned rises_in_a_row = 0;
  double prev = 0.0;
  walk_column(scenario_, n_max_, r,
              [&](unsigned n, double pi_partial, double pi_n) {
                const double cost =
                    cost_from_pieces(scenario_, n, r, pi_partial, pi_n);
                if (n == 1) {
                  best = {1, cost};
                  prev = cost;
                  return true;
                }
                if (cost < best.cost) best = {n, cost};
                rises_in_a_row = (cost > prev) ? rises_in_a_row + 1 : 0;
                prev = cost;
                return rises_in_a_row < 8;
              });
  return best;
}

std::vector<double> CostSurface::Surface::row(unsigned n) const {
  const std::size_t cols = r_grid.size();
  const auto first =
      values.begin() + static_cast<std::ptrdiff_t>((n - 1) * cols);
  return std::vector<double>(first, first + static_cast<std::ptrdiff_t>(cols));
}

namespace {

CostSurface::Surface evaluate_surface(
    const CostSurface& surface, std::vector<double> r_grid,
    const exec::ExecOptions& opts,
    std::vector<double> (CostSurface::*column)(double) const) {
  CostSurface::Surface out;
  out.n_max = surface.n_max();
  out.r_grid = std::move(r_grid);
  const std::size_t cols = out.r_grid.size();
  out.values.resize(static_cast<std::size_t>(out.n_max) * cols);
  exec::parallel_for(
      cols,
      [&](std::size_t j) {
        const std::vector<double> col = (surface.*column)(out.r_grid[j]);
        for (unsigned n = 1; n <= out.n_max; ++n)
          out.values[(n - 1) * cols + j] = col[n - 1];
      },
      opts);
  return out;
}

}  // namespace

CostSurface::Surface CostSurface::costs(std::vector<double> r_grid,
                                        const exec::ExecOptions& opts) const {
  return evaluate_surface(*this, std::move(r_grid), opts,
                          &CostSurface::cost_column);
}

CostSurface::Surface CostSurface::error_probabilities(
    std::vector<double> r_grid, const exec::ExecOptions& opts) const {
  return evaluate_surface(*this, std::move(r_grid), opts,
                          &CostSurface::error_column);
}

}  // namespace zc::core
