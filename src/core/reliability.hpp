#pragma once

/// \file reliability.hpp
/// Reliability analysis (Sec. 5): the probability that the protocol
/// terminates in `error` — i.e. configures an address that is already in
/// use. Closed form Eq. (4):
///
///   Err(n, r) = q pi_n(r) / (1 - q (1 - pi_n(r)))
///
/// cross-checked against the absorbing-chain computation
/// s (I - P'_n)^{-1} e.

#include "core/params.hpp"

namespace zc::core {

/// Collision probability via the analytic Eq. (4).
[[nodiscard]] double error_probability(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

/// Collision probability via absorbing-chain analysis of the DRM.
[[nodiscard]] double error_probability_numeric(const ScenarioParams& scenario,
                                               const ProtocolParams& protocol);

/// Reliability = P(terminate in `ok`) = 1 - error_probability.
[[nodiscard]] double reliability(const ScenarioParams& scenario,
                                 const ProtocolParams& protocol);

/// log10 of the collision probability, computed in the log domain; exact
/// deep into ranges where the linear-domain value would be subnormal.
[[nodiscard]] double log10_error_probability(const ScenarioParams& scenario,
                                             const ProtocolParams& protocol);

/// Schedule generalization of Eq. (4): pi_n = prod_{j<=n} S(t_j) with
/// t_j the cumulative listening time. Uniform schedules are bit-identical
/// to the (n, r) overloads.
[[nodiscard]] double error_probability(const ScenarioParams& scenario,
                                       const ProbeSchedule& schedule);
[[nodiscard]] double error_probability_numeric(const ScenarioParams& scenario,
                                               const ProbeSchedule& schedule);
[[nodiscard]] double reliability(const ScenarioParams& scenario,
                                 const ProbeSchedule& schedule);
[[nodiscard]] double log10_error_probability(const ScenarioParams& scenario,
                                             const ProbeSchedule& schedule);

}  // namespace zc::core
