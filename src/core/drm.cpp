#include "core/drm.hpp"

#include "core/no_answer.hpp"

namespace zc::core {

std::vector<std::string> DrmLayout::state_names() const {
  std::vector<std::string> names;
  names.reserve(num_states());
  names.emplace_back("start");
  for (unsigned i = 1; i <= n; ++i) {
    switch (i) {
      case 1: names.emplace_back("1st"); break;
      case 2: names.emplace_back("2nd"); break;
      case 3: names.emplace_back("3rd"); break;
      default: names.push_back(std::to_string(i) + "th"); break;
    }
  }
  names.emplace_back("error");
  names.emplace_back("ok");
  return names;
}

markov::Dtmc build_chain(const ScenarioParams& scenario,
                         const ProtocolParams& protocol) {
  protocol.validate(/*allow_zero_r=*/true);
  const DrmLayout layout{protocol.n};
  const unsigned n = protocol.n;
  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), n, protocol.r);

  linalg::Matrix p(layout.num_states(), layout.num_states(), 0.0);
  p(DrmLayout::start(), layout.probe_state(1)) = q;
  p(DrmLayout::start(), layout.ok()) = 1.0 - q;
  for (unsigned k = 1; k <= n; ++k) {
    // In probe state k the next probe round goes unanswered with
    // probability p_k(r) = pi_k / pi_{k-1}; otherwise a reply arrives and
    // the host restarts with a fresh address. If pi_{k-1} is already 0
    // (degenerate loss-free bounded-support distributions) the state is
    // unreachable and any valid row works; use p_k = 0.
    const double p_k = pi[k - 1] > 0.0 ? pi[k] / pi[k - 1] : 0.0;
    const std::size_t next =
        (k == n) ? layout.error() : layout.probe_state(k + 1);
    p(layout.probe_state(k), next) = p_k;
    p(layout.probe_state(k), DrmLayout::start()) = 1.0 - p_k;
  }
  p(layout.error(), layout.error()) = 1.0;
  p(layout.ok(), layout.ok()) = 1.0;

  return markov::Dtmc(std::move(p), layout.state_names());
}

linalg::Matrix build_cost_matrix(const ScenarioParams& scenario,
                                 const ProtocolParams& protocol) {
  protocol.validate(/*allow_zero_r=*/true);
  const DrmLayout layout{protocol.n};
  const unsigned n = protocol.n;
  const double per_probe = protocol.r + scenario.probe_cost();

  linalg::Matrix c(layout.num_states(), layout.num_states(), 0.0);
  // start -> ok: all n probes are sent against a free address.
  c(DrmLayout::start(), layout.ok()) = static_cast<double>(n) * per_probe;
  // start -> 1st and each advance to the next probe round: one probe each.
  c(DrmLayout::start(), layout.probe_state(1)) = per_probe;
  for (unsigned k = 1; k + 1 <= n; ++k)
    c(layout.probe_state(k), layout.probe_state(k + 1)) = per_probe;
  // nth -> error: the collision cost.
  c(layout.probe_state(n), layout.error()) = scenario.error_cost();
  return c;
}

markov::MarkovRewardModel build_drm(const ScenarioParams& scenario,
                                    const ProtocolParams& protocol) {
  markov::Dtmc chain = build_chain(scenario, protocol);
  linalg::Matrix costs = build_cost_matrix(scenario, protocol);
  // The paper's convention: p_ij = 0 implies c_ij = 0. With degenerate
  // delay distributions (zero loss and bounded support) some probe
  // transitions have probability 0; drop their cost entries.
  for (std::size_t i = 0; i < chain.num_states(); ++i)
    for (std::size_t j = 0; j < chain.num_states(); ++j)
      if (chain.probability(i, j) == 0.0) costs(i, j) = 0.0;
  return markov::MarkovRewardModel(std::move(chain), std::move(costs));
}

markov::Dtmc build_chain(const ScenarioParams& scenario,
                         const ProbeSchedule& schedule) {
  if (schedule.is_effectively_uniform())
    return build_chain(scenario,
                       ProtocolParams{schedule.n(), schedule.uniform_r()});
  schedule.validate(/*allow_zero_r=*/true);
  const unsigned n = schedule.n();
  const DrmLayout layout{n};
  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), schedule);

  linalg::Matrix p(layout.num_states(), layout.num_states(), 0.0);
  p(DrmLayout::start(), layout.probe_state(1)) = q;
  p(DrmLayout::start(), layout.ok()) = 1.0 - q;
  for (unsigned k = 1; k <= n; ++k) {
    // Non-homogeneous ladder: p_k = S(t_k) conditioned on reaching probe
    // round k, i.e. pi_k / pi_{k-1}; unreachable rows (pi_{k-1} = 0) are
    // pinned to p_k = 0 as in the uniform builder.
    const double p_k = pi[k - 1] > 0.0 ? pi[k] / pi[k - 1] : 0.0;
    const std::size_t next =
        (k == n) ? layout.error() : layout.probe_state(k + 1);
    p(layout.probe_state(k), next) = p_k;
    p(layout.probe_state(k), DrmLayout::start()) = 1.0 - p_k;
  }
  p(layout.error(), layout.error()) = 1.0;
  p(layout.ok(), layout.ok()) = 1.0;

  return markov::Dtmc(std::move(p), layout.state_names());
}

linalg::Matrix build_cost_matrix(const ScenarioParams& scenario,
                                 const ProbeSchedule& schedule) {
  if (schedule.is_effectively_uniform())
    return build_cost_matrix(
        scenario, ProtocolParams{schedule.n(), schedule.uniform_r()});
  schedule.validate(/*allow_zero_r=*/true);
  const unsigned n = schedule.n();
  const DrmLayout layout{n};
  const double c0 = scenario.probe_cost();

  linalg::Matrix c(layout.num_states(), layout.num_states(), 0.0);
  // start -> ok: all n probes sent against a free address, each waiting
  // out its own window.
  double full_pass = 0.0;
  for (unsigned i = 1; i <= n; ++i) full_pass += schedule.timeout(i) + c0;
  c(DrmLayout::start(), layout.ok()) = full_pass;
  // start -> 1st sends probe 1 (window r_1); advancing from round k sends
  // probe k+1 (window r_{k+1}).
  c(DrmLayout::start(), layout.probe_state(1)) = schedule.timeout(1) + c0;
  for (unsigned k = 1; k + 1 <= n; ++k)
    c(layout.probe_state(k), layout.probe_state(k + 1)) =
        schedule.timeout(k + 1) + c0;
  // nth -> error: the collision cost.
  c(layout.probe_state(n), layout.error()) = scenario.error_cost();
  return c;
}

markov::MarkovRewardModel build_drm(const ScenarioParams& scenario,
                                    const ProbeSchedule& schedule) {
  markov::Dtmc chain = build_chain(scenario, schedule);
  linalg::Matrix costs = build_cost_matrix(scenario, schedule);
  for (std::size_t i = 0; i < chain.num_states(); ++i)
    for (std::size_t j = 0; j < chain.num_states(); ++j)
      if (chain.probability(i, j) == 0.0) costs(i, j) = 0.0;
  return markov::MarkovRewardModel(std::move(chain), std::move(costs));
}

}  // namespace zc::core
