#pragma once

/// \file optimize.hpp
/// The optimization layer of Sec. 4.2 / 4.4: per-n optimal listening
/// periods r_opt(n), the optimal probe count N(r) for a given r, the
/// lower-envelope C_min(r), the minimal-useful-n bound nu, and the joint
/// optimum over (n, r).

#include <limits>
#include <vector>

#include "core/params.hpp"
#include "exec/parallel.hpp"

namespace zc::core {

/// Options for the r-optimization of a single C_n.
struct ROptOptions {
  double r_min = 1e-6;          ///< lower end of the search interval
  double r_max = 0.0;           ///< upper end; 0 = auto from the delay dist.
  std::size_t grid_points = 512;  ///< coarse-scan resolution
  double x_tol = 1e-10;         ///< Brent refinement tolerance

  /// Parallelism of the coarse scan (optimal_r) / the per-n searches
  /// (joint_optimum). Results are identical at any thread count.
  exec::ExecOptions exec{};
};

/// A located cost minimum.
struct CostMinimum {
  double r = 0.0;     ///< argmin r
  double cost = 0.0;  ///< C_n(r) at the minimum
};

/// r_opt(n): the r minimizing C_n(r). C_n is polynomially-decreasing-then-
/// linearly-increasing (Sec. 4.2), but can be flat near 0; a coarse grid
/// scan followed by Brent refinement locates the global minimum robustly.
[[nodiscard]] CostMinimum optimal_r(const ScenarioParams& scenario, unsigned n,
                                    const ROptOptions& opts = {});

/// N(r) (Sec. 4.4): the smallest n minimizing C(n, r) for fixed r.
/// Scans n = 1..n_max; C_n(r) is eventually increasing in n (each extra
/// probe costs r+c while the error term is already negligible), so the
/// scan stops once the cost has risen monotonically well past the best.
[[nodiscard]] unsigned optimal_n(const ScenarioParams& scenario, double r,
                                 unsigned n_max = 64);

/// C_min(r) = C(N(r), r).
[[nodiscard]] double min_cost(const ScenarioParams& scenario, double r,
                              unsigned n_max = 64);

/// nu = ceil( -log E / log(1-l) ): below this n, the error term q E pi_n
/// can never become small (Sec. 4.4). `loss` is 1-l.
[[nodiscard]] unsigned min_useful_n(double error_cost, double loss);

/// Joint optimum over n in [1, n_max] and r in the ROptOptions interval.
struct JointOptimum {
  unsigned n = 0;
  double r = 0.0;
  double cost = 0.0;
  double error_prob = 0.0;  ///< collision probability at the optimum
};

[[nodiscard]] JointOptimum joint_optimum(const ScenarioParams& scenario,
                                         unsigned n_max = 16,
                                         const ROptOptions& opts = {});

/// One step of the piecewise-constant N(r): on [r_from, r_to) the optimal
/// probe count is `n`.
struct NBreakpoint {
  double r_from = 0.0;
  double r_to = 0.0;
  unsigned n = 0;
};

/// Locate the steps of N(r) on [r_lo, r_hi]: scan a grid (in parallel,
/// deterministically), then bisect each change to `r_tol`. Returned
/// intervals partition [r_lo, r_hi].
[[nodiscard]] std::vector<NBreakpoint> n_breakpoints(
    const ScenarioParams& scenario, double r_lo, double r_hi,
    std::size_t grid_points = 512, double r_tol = 1e-9, unsigned n_max = 64,
    const exec::ExecOptions& exec = {});

/// Options for schedule-family optimization at a fixed probe budget.
struct ScheduleOptOptions {
  double r0_min = 1e-6;  ///< lower end of the first-timeout search range
  double r0_max = 0.0;   ///< upper end; 0 = auto from the delay distribution
  /// Shape range: the geometric factor or linear step interval. 0/0 =
  /// auto (geometric: [0.5, 2]; linear: +/- r0_max / n). The neutral
  /// shape (factor 1 / step 0) is always injected into the scan so the
  /// family can never do worse than the best uniform schedule on the
  /// same r0 grid.
  double shape_min = 0.0;
  double shape_max = 0.0;
  std::size_t r0_points = 128;    ///< coarse-scan resolution in r0
  std::size_t shape_points = 33;  ///< coarse-scan resolution in shape
  std::size_t zoom_rounds = 2;    ///< local-grid refinement passes
  /// Feasibility bound: only schedules with collision probability <= this
  /// compete (infinity = unconstrained). This is how "cheapest schedule
  /// at matched error probability" searches are expressed.
  double max_error_probability = std::numeric_limits<double>::infinity();

  /// Parallelism of the scan (over shape columns); results are identical
  /// at any thread count.
  exec::ExecOptions exec{};
};

/// A located schedule-family optimum.
struct ScheduleOptimum {
  ProbeSchedule schedule;
  double cost = std::numeric_limits<double>::infinity();
  double error_prob = 0.0;
  bool feasible = false;  ///< false if no scanned schedule met the bound
};

/// Best schedule of `family` with exactly `n` probes: deterministic
/// coarse scan over (r0, shape) with local-grid zooming, evaluated
/// through one shared survival ladder per candidate (CostSurface). For
/// ScheduleFamily::uniform the shape axis degenerates and the scan runs
/// over r alone. Candidates whose timeouts leave (0, inf) (e.g. negative
/// linear steps overshooting) are skipped.
[[nodiscard]] ScheduleOptimum optimal_schedule(
    const ScenarioParams& scenario, ScheduleFamily family, unsigned n,
    const ScheduleOptOptions& opts = {});

}  // namespace zc::core
