#include "core/scenarios.hpp"

namespace zc::core::scenarios {

ExponentialScenario figure2() {
  ExponentialScenario s;
  s.q = 1000.0 / kAddressSpaceSize;
  s.probe_cost = 2.0;
  s.error_cost = 1e35;
  s.loss = 1e-15;
  s.lambda = 10.0;
  s.round_trip = 1.0;
  return s;
}

ExponentialScenario sec45_r2() {
  ExponentialScenario s;
  s.q = 1000.0 / kAddressSpaceSize;
  s.probe_cost = 3.5;    // paper-derived c_{r=2}
  s.error_cost = 5e20;   // paper-derived E_{r=2}
  s.loss = 1e-5;
  s.lambda = 10.0;
  s.round_trip = 1.0;
  return s;
}

ExponentialScenario sec45_r02() {
  ExponentialScenario s;
  s.q = 1000.0 / kAddressSpaceSize;
  s.probe_cost = 0.5;    // paper-derived c_{r=0.2}
  s.error_cost = 1e35;   // paper-derived E_{r=0.2}
  s.loss = 1e-10;
  s.lambda = 100.0;
  s.round_trip = 0.1;
  return s;
}

ExponentialScenario sec6() {
  ExponentialScenario s;
  s.q = 1000.0 / kAddressSpaceSize;
  s.probe_cost = 3.5;   // kept from the r = 2 calibration
  s.error_cost = 5e20;  // kept from the r = 2 calibration
  s.loss = 1e-12;
  s.lambda = 10.0;
  s.round_trip = 1e-3;
  return s;
}

ProtocolParams draft_unreliable() { return ProtocolParams{4, 2.0}; }

ProtocolParams draft_reliable() { return ProtocolParams{4, 0.2}; }

}  // namespace zc::core::scenarios
