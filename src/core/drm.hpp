#pragma once

/// \file drm.hpp
/// Construction of the paper's DRM family (Sec. 3.1 / 4.1): for each n, a
/// discrete-time Markov chain P_n on states
///
///   start, 1st, 2nd, ..., nth, error, ok
///
/// with the transition-cost matrix C_n. State indexing follows the paper's
/// table (shifted to 0-based):
///
///   | state  | start | 1st | ... | nth | error | ok  |
///   | index  |   0   |  1  | ... |  n  |  n+1  | n+2 |

#include "markov/reward.hpp"
#include "core/params.hpp"

namespace zc::core {

/// Index helpers for the DRM state space of a given n.
struct DrmLayout {
  unsigned n;

  [[nodiscard]] static constexpr std::size_t start() { return 0; }
  /// State reached after the i-th unanswered probe round, i in [1, n]
  /// ("1st", "2nd", ..., "nth").
  [[nodiscard]] std::size_t probe_state(unsigned i) const {
    ZC_EXPECTS(1 <= i && i <= n);
    return i;
  }
  [[nodiscard]] std::size_t error() const { return n + 1; }
  [[nodiscard]] std::size_t ok() const { return n + 2; }
  [[nodiscard]] std::size_t num_states() const { return n + 3; }

  /// Paper-faithful state names: "start", "1st", ..., "error", "ok".
  [[nodiscard]] std::vector<std::string> state_names() const;
};

/// The transition-probability matrix P_n of Sec. 4.1 for the given
/// parameters (entries p_{1,2}=q, p_{1,n+3}=1-q, p_{i,1}=1-p_{i-1}(r),
/// p_{i,i+1}=p_{i-1}(r), absorbing error/ok).
[[nodiscard]] markov::Dtmc build_chain(const ScenarioParams& scenario,
                                       const ProtocolParams& protocol);

/// The cost matrix C_n of Sec. 4.1: c_{1,n+3} = n(r+c), c_{i,i+1} = r+c
/// for i = 1..n, c_{n+1,n+2} = E (1-based paper indices).
[[nodiscard]] linalg::Matrix build_cost_matrix(const ScenarioParams& scenario,
                                               const ProtocolParams& protocol);

/// The full Markov reward model (P_n, C_n).
[[nodiscard]] markov::MarkovRewardModel build_drm(
    const ScenarioParams& scenario, const ProtocolParams& protocol);

/// Schedule generalization: the probe ladder becomes non-homogeneous.
/// p_k = pi_k / pi_{k-1} with pi_i = prod_{j<=i} S(t_j), and the cost of
/// advancing to probe round k+1 is r_{k+1} + c (no longer one shared
/// per-probe constant). Uniform schedules delegate to the (n, r) builders
/// and are bit-identical to them.
[[nodiscard]] markov::Dtmc build_chain(const ScenarioParams& scenario,
                                       const ProbeSchedule& schedule);

/// Schedule cost matrix: c_{start,ok} = sum_i (r_i + c),
/// c_{start,1st} = r_1 + c, c_{k,k+1} = r_{k+1} + c, c_{nth,error} = E.
[[nodiscard]] linalg::Matrix build_cost_matrix(const ScenarioParams& scenario,
                                               const ProbeSchedule& schedule);

/// The full reward model for a schedule.
[[nodiscard]] markov::MarkovRewardModel build_drm(
    const ScenarioParams& scenario, const ProbeSchedule& schedule);

}  // namespace zc::core
