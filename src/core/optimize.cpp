#include "core/optimize.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/reliability.hpp"
#include "numerics/grid.hpp"
#include "numerics/minimize.hpp"

namespace zc::core {

namespace {

double resolve_r_max(const ScenarioParams& scenario, const ROptOptions& opts) {
  if (opts.r_max > 0.0) return opts.r_max;
  // Generous default: minima sit near the round-trip scale; search an
  // order of magnitude beyond the mean reply time.
  return 10.0 * scenario.reply_delay().mean_given_arrival() + 1.0;
}

}  // namespace

CostMinimum optimal_r(const ScenarioParams& scenario, unsigned n,
                      const ROptOptions& opts) {
  ZC_EXPECTS(n >= 1);
  const double r_max = resolve_r_max(scenario, opts);
  ZC_EXPECTS(opts.r_min > 0.0 && opts.r_min < r_max);
  ZC_EXPECTS(opts.grid_points >= 3);
  const auto cost = [&](double r) {
    return mean_cost(scenario, ProtocolParams{n, r});
  };
  // Coarse scan in parallel (grid values are scheduling-independent),
  // then the exact same bracketing + Brent refinement as the serial path.
  const auto xs = numerics::linspace(opts.r_min, r_max, opts.grid_points);
  std::vector<double> values(xs.size());
  exec::parallel_for(
      xs.size(), [&](std::size_t i) { values[i] = cost(xs[i]); }, opts.exec);
  const auto result =
      numerics::refine_scanned_minimize(cost, xs, values, opts.x_tol);
  return {result.x, result.value};
}

unsigned optimal_n(const ScenarioParams& scenario, double r, unsigned n_max) {
  ZC_EXPECTS(r >= 0.0);
  ZC_EXPECTS(n_max >= 1);
  return CostSurface(scenario, n_max).min_over_n(r).n;
}

double min_cost(const ScenarioParams& scenario, double r, unsigned n_max) {
  return CostSurface(scenario, n_max).min_over_n(r).cost;
}

unsigned min_useful_n(double error_cost, double loss) {
  ZC_EXPECTS(error_cost > 1.0);
  ZC_EXPECTS(0.0 < loss && loss < 1.0);
  // nu = ceil( -log E / log(1-l) ), with 1-l = loss.
  const double nu = -std::log(error_cost) / std::log(loss);
  return static_cast<unsigned>(std::ceil(nu));
}

JointOptimum joint_optimum(const ScenarioParams& scenario, unsigned n_max,
                           const ROptOptions& opts) {
  ZC_EXPECTS(n_max >= 1);
  // Each per-n search is independent; run them across the pool and keep
  // the inner scans serial (parallelism composes poorly when nested and
  // the outer loop already saturates the workers).
  ROptOptions inner = opts;
  inner.exec.threads = 1;
  std::vector<CostMinimum> minima(n_max);
  exec::ExecOptions outer = opts.exec;
  outer.chunk_size = 1;  // n-searches vary a lot in cost; balance finely
  exec::parallel_for(
      n_max,
      [&](std::size_t i) {
        minima[i] = optimal_r(scenario, static_cast<unsigned>(i) + 1, inner);
      },
      outer);

  JointOptimum best;
  best.cost = std::numeric_limits<double>::infinity();
  for (unsigned n = 1; n <= n_max; ++n) {
    const CostMinimum& m = minima[n - 1];
    if (m.cost < best.cost) {
      best.n = n;
      best.r = m.r;
      best.cost = m.cost;
    }
  }
  best.error_prob =
      error_probability(scenario, ProtocolParams{best.n, best.r});
  return best;
}

std::vector<NBreakpoint> n_breakpoints(const ScenarioParams& scenario,
                                       double r_lo, double r_hi,
                                       std::size_t grid_points, double r_tol,
                                       unsigned n_max,
                                       const exec::ExecOptions& exec) {
  ZC_EXPECTS(0.0 < r_lo && r_lo < r_hi);
  ZC_EXPECTS(grid_points >= 2);

  const CostSurface surface(scenario, n_max);
  const double step =
      (r_hi - r_lo) / static_cast<double>(grid_points - 1);

  // Pre-scan N(r) at every grid point in parallel; the serial walk below
  // then only pays for bisections, each O(n_max) survival calls.
  std::vector<unsigned> n_at(grid_points);
  exec::parallel_for(
      grid_points,
      [&](std::size_t i) {
        const double r = r_lo + static_cast<double>(i) * step;
        n_at[i] = surface.min_over_n(std::min(r, r_hi)).n;
      },
      exec);

  std::vector<NBreakpoint> out;
  double seg_start = r_lo;
  unsigned seg_n = n_at[0];

  for (std::size_t i = 1; i < grid_points; ++i) {
    const double r = r_lo + static_cast<double>(i) * step;
    const unsigned n_here = n_at[i];
    if (n_here == seg_n) continue;
    // Bisect the change point within (r - step, r].
    double lo = r - step, hi = std::min(r, r_hi);
    while (hi - lo > r_tol) {
      const double mid = 0.5 * (lo + hi);
      if (surface.min_over_n(mid).n == seg_n)
        lo = mid;
      else
        hi = mid;
    }
    out.push_back({seg_start, hi, seg_n});
    seg_start = hi;
    seg_n = n_here;
  }
  out.push_back({seg_start, r_hi, seg_n});
  return out;
}

}  // namespace zc::core
