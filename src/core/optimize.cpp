#include "core/optimize.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/reliability.hpp"
#include "numerics/minimize.hpp"

namespace zc::core {

namespace {

double resolve_r_max(const ScenarioParams& scenario, const ROptOptions& opts) {
  if (opts.r_max > 0.0) return opts.r_max;
  // Generous default: minima sit near the round-trip scale; search an
  // order of magnitude beyond the mean reply time.
  return 10.0 * scenario.reply_delay().mean_given_arrival() + 1.0;
}

}  // namespace

CostMinimum optimal_r(const ScenarioParams& scenario, unsigned n,
                      const ROptOptions& opts) {
  ZC_EXPECTS(n >= 1);
  const double r_max = resolve_r_max(scenario, opts);
  ZC_EXPECTS(opts.r_min > 0.0 && opts.r_min < r_max);
  const auto result = numerics::scan_then_refine_minimize(
      [&](double r) { return mean_cost(scenario, ProtocolParams{n, r}); },
      opts.r_min, r_max, opts.grid_points, opts.x_tol);
  return {result.x, result.value};
}

unsigned optimal_n(const ScenarioParams& scenario, double r, unsigned n_max) {
  ZC_EXPECTS(r >= 0.0);
  ZC_EXPECTS(n_max >= 1);
  unsigned best_n = 1;
  double best_cost = mean_cost(scenario, ProtocolParams{1, r});
  unsigned rises_in_a_row = 0;
  double prev = best_cost;
  for (unsigned n = 2; n <= n_max; ++n) {
    const double cost = mean_cost(scenario, ProtocolParams{n, r});
    if (cost < best_cost) {
      best_cost = cost;
      best_n = n;
    }
    // After the error term is exhausted the cost grows by ~(r+c)(1-q) per
    // extra probe; several consecutive rises mean the minimum is behind us.
    rises_in_a_row = (cost > prev) ? rises_in_a_row + 1 : 0;
    if (rises_in_a_row >= 8) break;
    prev = cost;
  }
  return best_n;
}

double min_cost(const ScenarioParams& scenario, double r, unsigned n_max) {
  const unsigned n = optimal_n(scenario, r, n_max);
  return mean_cost(scenario, ProtocolParams{n, r});
}

unsigned min_useful_n(double error_cost, double loss) {
  ZC_EXPECTS(error_cost > 1.0);
  ZC_EXPECTS(0.0 < loss && loss < 1.0);
  // nu = ceil( -log E / log(1-l) ), with 1-l = loss.
  const double nu = -std::log(error_cost) / std::log(loss);
  return static_cast<unsigned>(std::ceil(nu));
}

JointOptimum joint_optimum(const ScenarioParams& scenario, unsigned n_max,
                           const ROptOptions& opts) {
  ZC_EXPECTS(n_max >= 1);
  JointOptimum best;
  best.cost = std::numeric_limits<double>::infinity();
  for (unsigned n = 1; n <= n_max; ++n) {
    const CostMinimum m = optimal_r(scenario, n, opts);
    if (m.cost < best.cost) {
      best.n = n;
      best.r = m.r;
      best.cost = m.cost;
    }
  }
  best.error_prob =
      error_probability(scenario, ProtocolParams{best.n, best.r});
  return best;
}

std::vector<NBreakpoint> n_breakpoints(const ScenarioParams& scenario,
                                       double r_lo, double r_hi,
                                       std::size_t grid_points, double r_tol,
                                       unsigned n_max) {
  ZC_EXPECTS(0.0 < r_lo && r_lo < r_hi);
  ZC_EXPECTS(grid_points >= 2);

  std::vector<NBreakpoint> out;
  const double step =
      (r_hi - r_lo) / static_cast<double>(grid_points - 1);
  double seg_start = r_lo;
  unsigned seg_n = optimal_n(scenario, r_lo, n_max);

  for (std::size_t i = 1; i < grid_points; ++i) {
    const double r = r_lo + static_cast<double>(i) * step;
    const unsigned n_here = optimal_n(scenario, std::min(r, r_hi), n_max);
    if (n_here == seg_n) continue;
    // Bisect the change point within (r - step, r].
    double lo = r - step, hi = std::min(r, r_hi);
    while (hi - lo > r_tol) {
      const double mid = 0.5 * (lo + hi);
      if (optimal_n(scenario, mid, n_max) == seg_n)
        lo = mid;
      else
        hi = mid;
    }
    out.push_back({seg_start, hi, seg_n});
    seg_start = hi;
    seg_n = n_here;
  }
  out.push_back({seg_start, r_hi, seg_n});
  return out;
}

}  // namespace zc::core
