#include "core/optimize.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/reliability.hpp"
#include "numerics/grid.hpp"
#include "numerics/minimize.hpp"

namespace zc::core {

namespace {

double resolve_r_max(const ScenarioParams& scenario, const ROptOptions& opts) {
  if (opts.r_max > 0.0) return opts.r_max;
  // Generous default: minima sit near the round-trip scale; search an
  // order of magnitude beyond the mean reply time.
  return 10.0 * scenario.reply_delay().mean_given_arrival() + 1.0;
}

}  // namespace

CostMinimum optimal_r(const ScenarioParams& scenario, unsigned n,
                      const ROptOptions& opts) {
  ZC_EXPECTS(n >= 1);
  const double r_max = resolve_r_max(scenario, opts);
  ZC_EXPECTS(opts.r_min > 0.0 && opts.r_min < r_max);
  ZC_EXPECTS(opts.grid_points >= 3);
  const auto cost = [&](double r) {
    return mean_cost(scenario, ProtocolParams{n, r});
  };
  // Coarse scan in parallel (grid values are scheduling-independent),
  // then the exact same bracketing + Brent refinement as the serial path.
  const auto xs = numerics::linspace(opts.r_min, r_max, opts.grid_points);
  std::vector<double> values(xs.size());
  exec::parallel_for(
      xs.size(), [&](std::size_t i) { values[i] = cost(xs[i]); }, opts.exec);
  const auto result =
      numerics::refine_scanned_minimize(cost, xs, values, opts.x_tol);
  return {result.x, result.value};
}

unsigned optimal_n(const ScenarioParams& scenario, double r, unsigned n_max) {
  ZC_EXPECTS(r >= 0.0);
  ZC_EXPECTS(n_max >= 1);
  return CostSurface(scenario, n_max).min_over_n(r).n;
}

double min_cost(const ScenarioParams& scenario, double r, unsigned n_max) {
  return CostSurface(scenario, n_max).min_over_n(r).cost;
}

unsigned min_useful_n(double error_cost, double loss) {
  ZC_EXPECTS(error_cost > 1.0);
  ZC_EXPECTS(0.0 < loss && loss < 1.0);
  // nu = ceil( -log E / log(1-l) ), with 1-l = loss.
  const double nu = -std::log(error_cost) / std::log(loss);
  return static_cast<unsigned>(std::ceil(nu));
}

JointOptimum joint_optimum(const ScenarioParams& scenario, unsigned n_max,
                           const ROptOptions& opts) {
  ZC_EXPECTS(n_max >= 1);
  // Each per-n search is independent; run them across the pool and keep
  // the inner scans serial (parallelism composes poorly when nested and
  // the outer loop already saturates the workers).
  ROptOptions inner = opts;
  inner.exec.threads = 1;
  std::vector<CostMinimum> minima(n_max);
  exec::ExecOptions outer = opts.exec;
  outer.chunk_size = 1;  // n-searches vary a lot in cost; balance finely
  exec::parallel_for(
      n_max,
      [&](std::size_t i) {
        minima[i] = optimal_r(scenario, static_cast<unsigned>(i) + 1, inner);
      },
      outer);

  JointOptimum best;
  best.cost = std::numeric_limits<double>::infinity();
  for (unsigned n = 1; n <= n_max; ++n) {
    const CostMinimum& m = minima[n - 1];
    if (m.cost < best.cost) {
      best.n = n;
      best.r = m.r;
      best.cost = m.cost;
    }
  }
  best.error_prob =
      error_probability(scenario, ProtocolParams{best.n, best.r});
  return best;
}

namespace {

ProbeSchedule make_candidate(ScheduleFamily family, unsigned n, double r0,
                             double shape) {
  switch (family) {
    case ScheduleFamily::uniform:
      return ProbeSchedule::uniform(n, r0);
    case ScheduleFamily::geometric:
      return ProbeSchedule::geometric(n, r0, shape);
    case ScheduleFamily::linear:
      return ProbeSchedule::linear(n, r0, shape);
    case ScheduleFamily::custom:
      break;
  }
  ZC_ASSERT(false);
  return ProbeSchedule{};
}

bool candidate_valid(const ProbeSchedule& schedule) {
  for (unsigned i = 1; i <= schedule.n(); ++i) {
    const double r = schedule.timeout(i);
    if (!(std::isfinite(r) && r > 0.0)) return false;
  }
  return true;
}

double neutral_shape(ScheduleFamily family) {
  return family == ScheduleFamily::geometric ? 1.0 : 0.0;
}

}  // namespace

ScheduleOptimum optimal_schedule(const ScenarioParams& scenario,
                                 ScheduleFamily family, unsigned n,
                                 const ScheduleOptOptions& opts) {
  ZC_EXPECTS(n >= 1);
  ZC_EXPECTS(family != ScheduleFamily::custom);
  ZC_EXPECTS(opts.r0_points >= 2);
  ZC_EXPECTS(opts.shape_points >= 2);
  const double r0_hi_bound =
      opts.r0_max > 0.0
          ? opts.r0_max
          : 10.0 * scenario.reply_delay().mean_given_arrival() + 1.0;
  ZC_EXPECTS(opts.r0_min > 0.0 && opts.r0_min < r0_hi_bound);

  double shape_lo = opts.shape_min;
  double shape_hi = opts.shape_max;
  if (shape_lo == 0.0 && shape_hi == 0.0) {
    if (family == ScheduleFamily::geometric) {
      shape_lo = 0.5;
      shape_hi = 2.0;
    } else if (family == ScheduleFamily::linear) {
      shape_hi = r0_hi_bound / static_cast<double>(n);
      shape_lo = -shape_hi;
    }
  }
  const double shape_lo_bound = shape_lo;
  const double shape_hi_bound = shape_hi;

  const CostSurface surface(scenario, n);
  ScheduleOptimum best;
  best.schedule = make_candidate(family, n, opts.r0_min, neutral_shape(family));

  // One coarse (r0 x shape) scan; parallel over shape columns, merged in
  // ascending column order so the result is thread-count invariant.
  const auto scan = [&](double r0_lo, double r0_hi, double s_lo, double s_hi) {
    const auto r0s = numerics::linspace(r0_lo, r0_hi, opts.r0_points);
    std::vector<double> shapes;
    if (family == ScheduleFamily::uniform) {
      shapes.push_back(0.0);
    } else {
      shapes = numerics::linspace(s_lo, s_hi, opts.shape_points);
      // The uniform-equivalent shape always competes, so the family's
      // optimum can only improve on the best uniform(r0) in the scan.
      shapes.push_back(neutral_shape(family));
    }
    std::vector<ScheduleOptimum> column_best(shapes.size());
    exec::parallel_for(
        shapes.size(),
        [&](std::size_t j) {
          ScheduleOptimum local;
          for (const double r0 : r0s) {
            const ProbeSchedule candidate =
                make_candidate(family, n, r0, shapes[j]);
            if (!candidate_valid(candidate)) continue;
            const double err = surface.error_at(candidate);
            if (!(err <= opts.max_error_probability)) continue;
            const double cost = surface.cost_at(candidate);
            if (!local.feasible || cost < local.cost) {
              local.schedule = candidate;
              local.cost = cost;
              local.error_prob = err;
              local.feasible = true;
            }
          }
          column_best[j] = local;
        },
        opts.exec);
    for (const ScheduleOptimum& local : column_best) {
      if (!local.feasible) continue;
      if (!best.feasible || local.cost < best.cost) best = local;
    }
  };

  double r0_lo = opts.r0_min, r0_hi = r0_hi_bound;
  scan(r0_lo, r0_hi, shape_lo, shape_hi);
  for (std::size_t round = 0; round < opts.zoom_rounds; ++round) {
    if (!best.feasible) break;
    // Zoom a local grid around the incumbent: one coarse cell of
    // half-width per axis, clamped to the original bounds.
    const double r0_cell =
        (r0_hi - r0_lo) / static_cast<double>(opts.r0_points - 1);
    const double shape_cell =
        (shape_hi - shape_lo) / static_cast<double>(opts.shape_points - 1);
    const double r0_c = best.schedule.r0();
    const double shape_c = family == ScheduleFamily::geometric
                               ? best.schedule.factor()
                               : best.schedule.step();
    r0_lo = std::max(opts.r0_min, r0_c - r0_cell);
    r0_hi = std::min(r0_hi_bound, r0_c + r0_cell);
    shape_lo = std::max(shape_lo_bound, shape_c - shape_cell);
    shape_hi = std::min(shape_hi_bound, shape_c + shape_cell);
    if (r0_hi <= r0_lo) break;
    scan(r0_lo, r0_hi, shape_lo, shape_hi);
  }
  return best;
}

std::vector<NBreakpoint> n_breakpoints(const ScenarioParams& scenario,
                                       double r_lo, double r_hi,
                                       std::size_t grid_points, double r_tol,
                                       unsigned n_max,
                                       const exec::ExecOptions& exec) {
  ZC_EXPECTS(0.0 < r_lo && r_lo < r_hi);
  ZC_EXPECTS(grid_points >= 2);

  const CostSurface surface(scenario, n_max);
  const double step =
      (r_hi - r_lo) / static_cast<double>(grid_points - 1);

  // Pre-scan N(r) at every grid point in parallel; the serial walk below
  // then only pays for bisections, each O(n_max) survival calls.
  std::vector<unsigned> n_at(grid_points);
  exec::parallel_for(
      grid_points,
      [&](std::size_t i) {
        const double r = r_lo + static_cast<double>(i) * step;
        n_at[i] = surface.min_over_n(std::min(r, r_hi)).n;
      },
      exec);

  std::vector<NBreakpoint> out;
  double seg_start = r_lo;
  unsigned seg_n = n_at[0];

  for (std::size_t i = 1; i < grid_points; ++i) {
    const double r = r_lo + static_cast<double>(i) * step;
    const unsigned n_here = n_at[i];
    if (n_here == seg_n) continue;
    // Bisect the change point within (r - step, r].
    double lo = r - step, hi = std::min(r, r_hi);
    while (hi - lo > r_tol) {
      const double mid = 0.5 * (lo + hi);
      if (surface.min_over_n(mid).n == seg_n)
        lo = mid;
      else
        hi = mid;
    }
    out.push_back({seg_start, hi, seg_n});
    seg_start = hi;
    seg_n = n_here;
  }
  out.push_back({seg_start, r_hi, seg_n});
  return out;
}

}  // namespace zc::core
