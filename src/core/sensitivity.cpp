#include "core/sensitivity.hpp"

#include <cmath>
#include <functional>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"

namespace zc::core {

namespace {

using Setter = std::function<void(ExponentialScenario&, double)>;
using Getter = std::function<double(const ExponentialScenario&)>;

struct ParameterAccess {
  const char* name;
  Getter get;
  Setter set;
};

const std::vector<ParameterAccess>& parameter_table() {
  static const std::vector<ParameterAccess> table = {
      {"q", [](const ExponentialScenario& s) { return s.q; },
       [](ExponentialScenario& s, double v) { s.q = v; }},
      {"c", [](const ExponentialScenario& s) { return s.probe_cost; },
       [](ExponentialScenario& s, double v) { s.probe_cost = v; }},
      {"E", [](const ExponentialScenario& s) { return s.error_cost; },
       [](ExponentialScenario& s, double v) { s.error_cost = v; }},
      {"loss", [](const ExponentialScenario& s) { return s.loss; },
       [](ExponentialScenario& s, double v) { s.loss = v; }},
      {"lambda", [](const ExponentialScenario& s) { return s.lambda; },
       [](ExponentialScenario& s, double v) { s.lambda = v; }},
      {"d", [](const ExponentialScenario& s) { return s.round_trip; },
       [](ExponentialScenario& s, double v) { s.round_trip = v; }},
  };
  return table;
}

double elasticity_of(const std::function<double(double)>& f, double p,
                     double rel_step) {
  ZC_EXPECTS(p != 0.0);
  const double h = rel_step * std::fabs(p);
  const double f_hi = f(p + h);
  const double f_lo = f(p - h);
  const double f_mid = f(p);
  if (f_mid == 0.0) return 0.0;
  const double derivative = (f_hi - f_lo) / (2.0 * h);
  return derivative * p / f_mid;
}

}  // namespace

std::vector<Elasticity> sensitivities(const ExponentialScenario& scenario,
                                      const ProtocolParams& protocol,
                                      double rel_step) {
  std::vector<Elasticity> out;
  out.reserve(parameter_table().size() + 1);

  for (const auto& param : parameter_table()) {
    const double p0 = param.get(scenario);
    const auto cost_at = [&](double v) {
      ExponentialScenario s = scenario;
      param.set(s, v);
      return mean_cost(s.to_params(), protocol);
    };
    const auto err_at = [&](double v) {
      ExponentialScenario s = scenario;
      param.set(s, v);
      return error_probability(s.to_params(), protocol);
    };
    Elasticity e;
    e.parameter = param.name;
    e.cost_elasticity = elasticity_of(cost_at, p0, rel_step);
    e.error_elasticity = elasticity_of(err_at, p0, rel_step);
    out.push_back(std::move(e));
  }

  // r is a protocol knob but its elasticity is equally interesting.
  {
    const auto cost_at = [&](double r) {
      return mean_cost(scenario.to_params(), ProtocolParams{protocol.n, r});
    };
    const auto err_at = [&](double r) {
      return error_probability(scenario.to_params(),
                               ProtocolParams{protocol.n, r});
    };
    Elasticity e;
    e.parameter = "r";
    e.cost_elasticity = elasticity_of(cost_at, protocol.r, rel_step);
    e.error_elasticity = elasticity_of(err_at, protocol.r, rel_step);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<OptimumShift> optimum_shifts(const ExponentialScenario& scenario,
                                         const std::string& parameter,
                                         const std::vector<double>& factors,
                                         unsigned n_max) {
  const ParameterAccess* access = nullptr;
  for (const auto& param : parameter_table()) {
    if (parameter == param.name) {
      access = &param;
      break;
    }
  }
  ZC_EXPECTS(access != nullptr);

  std::vector<OptimumShift> out;
  out.reserve(factors.size());
  for (const double factor : factors) {
    ExponentialScenario s = scenario;
    access->set(s, access->get(scenario) * factor);
    const JointOptimum opt = joint_optimum(s.to_params(), n_max);
    out.push_back({parameter, factor, opt.n, opt.r, opt.cost});
  }
  return out;
}

}  // namespace zc::core
