#pragma once

/// \file heterogeneous.hpp
/// The zeroconf model over a *heterogeneous* host population (extension
/// beyond the paper, which assumes one F_X for every responder).
///
/// Within one attempt, all n probes interrogate the same (randomly
/// drawn) host, so the no-answer events of an attempt are positively
/// correlated through the host identity:
///
///   pi_i^true(r) = sum_h w_h prod_{j=1}^{i} S_h(j r)
///
/// whereas feeding the naive probe-level mixture
/// S_mix = sum_h w_h S_h into Eq. (3)/(4) computes
/// prod_j S_mix(j r) <= pi_i^true (Chebyshev's sum inequality, since all
/// S_h(j r) are comonotone in the host's quality). The naive model
/// therefore *underestimates* the collision probability — quantified in
/// bench/ablation_heterogeneity.

#include <memory>
#include <vector>

#include "core/params.hpp"

namespace zc::core {

/// One responder class of the heterogeneous population.
struct HostClass {
  double weight = 0.0;  ///< population fraction; weights must sum to 1
  std::shared_ptr<const prob::DelayDistribution> reply_delay;
};

/// pi_0..pi_n with correct attempt-level host conditioning.
[[nodiscard]] std::vector<double> pi_values_heterogeneous(
    const std::vector<HostClass>& classes, unsigned n, double r);

/// Eq. (3) evaluated on caller-supplied path probabilities pi_0..pi_n
/// (size n+1). The shared backend of the homogeneous and heterogeneous
/// cost models.
[[nodiscard]] double mean_cost_from_pi(double q, double probe_cost,
                                       double error_cost,
                                       const ProtocolParams& protocol,
                                       const std::vector<double>& pi);

/// Eq. (4) evaluated on caller-supplied pi values.
[[nodiscard]] double error_probability_from_pi(double q,
                                               const std::vector<double>& pi);

/// Mean total cost over the heterogeneous population (exact
/// attempt-level treatment).
[[nodiscard]] double mean_cost_heterogeneous(
    double q, double probe_cost, double error_cost,
    const std::vector<HostClass>& classes, const ProtocolParams& protocol);

/// Collision probability over the heterogeneous population.
[[nodiscard]] double error_probability_heterogeneous(
    double q, const std::vector<HostClass>& classes,
    const ProtocolParams& protocol);

}  // namespace zc::core
