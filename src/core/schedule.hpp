#pragma once

/// \file schedule.hpp
/// Per-probe timeout schedules. The paper fixes one listening period `r`
/// for all `n` probes; `ProbeSchedule` generalizes that to an explicit
/// vector r_1..r_n while keeping the uniform case a *bit-compatible*
/// special case: every evaluator that consumes a schedule takes the
/// historical arithmetic path (e.g. `i * r`, never `r + r + ...`) when
/// `is_uniform()`, so uniform schedules reproduce today's analytic
/// values, simulation trial bytes, and report bytes exactly.
///
/// Probe i is sent at cumulative time t_{i-1} and listens for r_i, so
/// t_i = r_1 + ... + r_i and the no-answer ladder becomes
/// pi_i = prod_{j=1}^{i} S(t_j) — the uniform schedule recovers the
/// paper's pi_i(r) = prod S(j r).
///
/// Generator families:
///  - uniform(n, r):            r_i = r                (the paper's protocol)
///  - geometric(n, r0, factor): r_i = r0 * factor^(i-1), built iteratively
///  - linear(n, r0, step):      r_i = r0 + (i-1) * step
///  - from_timeouts({...}):     explicit vector
///
/// Like `ProtocolParams`, construction does not validate; `validate()`
/// is the one place domain checks live and throws zc::ContractViolation
/// naming the offending field.

#include <string>
#include <vector>

namespace zc::core {

/// Which generator produced a schedule. `custom` marks explicit vectors.
enum class ScheduleFamily { uniform, geometric, linear, custom };

/// Stable lowercase name used in JSON reports, journal digests, and CLI
/// flags ("uniform", "geometric", "linear", "custom").
[[nodiscard]] const char* to_string(ScheduleFamily family);

/// Parse a family name as emitted by `to_string`; returns false on an
/// unknown name (out left untouched).
[[nodiscard]] bool schedule_family_from_string(const std::string& name,
                                               ScheduleFamily& out);

/// Explicit per-probe timeout vector r_1..r_n with its generator recipe.
///
/// Uniform schedules store only (n, r) — no heap allocation — so the
/// default-constructed simulation config stays allocation-free; the
/// non-uniform families materialize their timeout and cumulative-time
/// vectors once at construction.
class ProbeSchedule {
 public:
  /// The draft's default: 4 probes, 2 s each (mirrors ProtocolParams{}).
  ProbeSchedule() = default;

  /// r_i = r for all i: the paper's (n, r) protocol, byte-compatible
  /// with every pre-schedule code path.
  [[nodiscard]] static ProbeSchedule uniform(unsigned n, double r);

  /// r_i = r0 * factor^(i-1), materialized iteratively (r *= factor) so
  /// the vector is reproducible bit-for-bit from (n, r0, factor).
  /// factor > 1 is exponential backoff; factor < 1 front-loads listening
  /// time on the early probes.
  [[nodiscard]] static ProbeSchedule geometric(unsigned n, double r0,
                                               double factor);

  /// r_i = r0 + (i-1) * step (step may be negative as long as every
  /// timeout stays positive — validate() checks).
  [[nodiscard]] static ProbeSchedule linear(unsigned n, double r0,
                                            double step);

  /// Explicit vector; n is the vector length.
  [[nodiscard]] static ProbeSchedule from_timeouts(
      std::vector<double> timeouts);

  /// Rebuild a schedule from its serialized recipe (family + parameters),
  /// as written by the engine's report/journal layer. Regeneration is
  /// bitwise-deterministic, so a round-trip through exact (round-trip
  /// formatted) parameters reproduces the original timeouts exactly.
  /// For `custom`, `timeouts` carries the vector; it is ignored for the
  /// generated families.
  [[nodiscard]] static ProbeSchedule restore(ScheduleFamily family,
                                             unsigned n, double r0,
                                             double factor, double step,
                                             std::vector<double> timeouts);

  [[nodiscard]] ScheduleFamily family() const noexcept { return family_; }
  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] bool is_uniform() const noexcept {
    return family_ == ScheduleFamily::uniform;
  }

  /// True when every per-probe timeout is the same double: the uniform
  /// family, a neutral-shape generator (geometric factor = 1, linear
  /// step = 0), or a constant custom vector. Effectively-uniform
  /// schedules take the historical uniform arithmetic path everywhere
  /// (`i * r`, never a running sum), so their analytic values, trial
  /// bytes, and report bytes are bit-identical to the equivalent
  /// `uniform(n, r)` — the metamorphic invariant the check oracle
  /// asserts (check/oracle.hpp).
  [[nodiscard]] bool is_effectively_uniform() const noexcept {
    return family_ == ScheduleFamily::uniform || constant_timeouts_;
  }

  /// The uniform listening period; precondition `is_effectively_uniform()`.
  [[nodiscard]] double uniform_r() const;

  /// First-probe timeout (generator parameter for uniform/geometric/
  /// linear; r_1 for custom).
  [[nodiscard]] double r0() const noexcept { return r0_; }
  /// Geometric ratio (1 for other families).
  [[nodiscard]] double factor() const noexcept { return factor_; }
  /// Linear increment (0 for other families).
  [[nodiscard]] double step() const noexcept { return step_; }

  /// r_i, 1-based; precondition 1 <= i <= n().
  [[nodiscard]] double timeout(unsigned i) const;

  /// Cumulative listening time t_i = r_1 + ... + r_i; t_0 = 0.
  /// Effectively-uniform schedules compute `i * r` (the historical
  /// arithmetic), never a running sum, so the value is bit-identical to
  /// the pre-schedule code.
  [[nodiscard]] double cumulative(unsigned i) const;

  /// t_n: total time spent listening when every probe goes unanswered.
  [[nodiscard]] double total_listening() const { return cumulative(n_); }

  /// Materialize r_1..r_n as a vector (allocates; serialization/tests).
  [[nodiscard]] std::vector<double> to_vector() const;

  /// Domain checks, mirroring ProtocolParams::validate: n >= 1, every
  /// timeout finite and > 0 (>= 0 with `allow_zero_r`, the closed forms'
  /// r = 0 limit), geometric factor finite and > 0. Throws
  /// zc::ContractViolation naming the offending field.
  void validate(bool allow_zero_r = false) const;

  /// One-line human/log rendering, e.g. "uniform(n=4, r=2)",
  /// "geometric(n=3, r0=0.5, factor=2)", "custom(n=2, [0.5, 1.25])".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const ProbeSchedule& a, const ProbeSchedule& b) {
    return a.family_ == b.family_ && a.n_ == b.n_ && a.r0_ == b.r0_ &&
           a.factor_ == b.factor_ && a.step_ == b.step_ &&
           a.timeouts_ == b.timeouts_;
  }

 private:
  ScheduleFamily family_ = ScheduleFamily::uniform;
  unsigned n_ = 4;
  double r0_ = 2.0;
  double factor_ = 1.0;
  double step_ = 0.0;
  // Materialized per-probe timeouts and prefix sums; empty for uniform
  // (computed on the fly so the uniform case never allocates).
  std::vector<double> timeouts_;
  std::vector<double> cumulative_;
  // Every materialized timeout is the same double (neutral-shape
  // generators, constant custom vectors); see is_effectively_uniform().
  bool constant_timeouts_ = false;

  void materialize_cumulative();
};

}  // namespace zc::core
