#include "core/no_answer.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

double no_answer_probability_product(const prob::DelayDistribution& fx,
                                     unsigned i, double r) {
  ZC_EXPECTS(r >= 0.0);
  double p = 1.0;
  for (unsigned j = 1; j <= i; ++j) {
    const double f_hi = fx.cdf(static_cast<double>(j) * r);
    const double f_lo = fx.cdf(static_cast<double>(j - 1) * r);
    ZC_ASSERT(f_lo < 1.0);
    p *= 1.0 - (f_hi - f_lo) / (1.0 - f_lo);
  }
  return p;
}

double no_answer_probability(const prob::DelayDistribution& fx, unsigned i,
                             double r) {
  ZC_EXPECTS(r >= 0.0);
  if (i == 0) return 1.0;  // p_0 = 1 by definition (Sec. 3.2)
  return fx.survival(static_cast<double>(i) * r);
}

std::vector<double> pi_values(const prob::DelayDistribution& fx, unsigned n,
                              double r) {
  ZC_EXPECTS(r >= 0.0);
  std::vector<double> pi(n + 1);
  pi[0] = 1.0;
  for (unsigned i = 1; i <= n; ++i)
    pi[i] = pi[i - 1] * fx.survival(static_cast<double>(i) * r);
  return pi;
}

double log_pi(const prob::DelayDistribution& fx, unsigned n, double r) {
  ZC_EXPECTS(r >= 0.0);
  numerics::KahanSum acc;
  for (unsigned j = 1; j <= n; ++j)
    acc.add(fx.log_survival(static_cast<double>(j) * r));
  return acc.value();
}

double no_answer_probability(const prob::DelayDistribution& fx,
                             const ProbeSchedule& schedule, unsigned i) {
  ZC_EXPECTS(i <= schedule.n());
  if (i == 0) return 1.0;  // p_0 = 1 by definition (Sec. 3.2)
  return fx.survival(schedule.cumulative(i));
}

std::vector<double> pi_values(const prob::DelayDistribution& fx,
                              const ProbeSchedule& schedule) {
  const unsigned n = schedule.n();
  std::vector<double> pi(n + 1);
  pi[0] = 1.0;
  for (unsigned i = 1; i <= n; ++i)
    pi[i] = pi[i - 1] * fx.survival(schedule.cumulative(i));
  return pi;
}

double log_pi(const prob::DelayDistribution& fx,
              const ProbeSchedule& schedule) {
  numerics::KahanSum acc;
  for (unsigned j = 1; j <= schedule.n(); ++j)
    acc.add(fx.log_survival(schedule.cumulative(j)));
  return acc.value();
}

}  // namespace zc::core
