#include "core/schedule.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::core {

const char* to_string(ScheduleFamily family) {
  switch (family) {
    case ScheduleFamily::uniform:
      return "uniform";
    case ScheduleFamily::geometric:
      return "geometric";
    case ScheduleFamily::linear:
      return "linear";
    case ScheduleFamily::custom:
      return "custom";
  }
  ZC_ASSERT(false);
  return "uniform";
}

bool schedule_family_from_string(const std::string& name,
                                 ScheduleFamily& out) {
  if (name == "uniform") {
    out = ScheduleFamily::uniform;
  } else if (name == "geometric") {
    out = ScheduleFamily::geometric;
  } else if (name == "linear") {
    out = ScheduleFamily::linear;
  } else if (name == "custom") {
    out = ScheduleFamily::custom;
  } else {
    return false;
  }
  return true;
}

ProbeSchedule ProbeSchedule::uniform(unsigned n, double r) {
  ProbeSchedule s;
  s.family_ = ScheduleFamily::uniform;
  s.n_ = n;
  s.r0_ = r;
  return s;
}

ProbeSchedule ProbeSchedule::geometric(unsigned n, double r0, double factor) {
  ProbeSchedule s;
  s.family_ = ScheduleFamily::geometric;
  s.n_ = n;
  s.r0_ = r0;
  s.factor_ = factor;
  s.timeouts_.reserve(n);
  double r = r0;
  for (unsigned i = 0; i < n; ++i) {
    s.timeouts_.push_back(r);
    r *= factor;
  }
  s.materialize_cumulative();
  return s;
}

ProbeSchedule ProbeSchedule::linear(unsigned n, double r0, double step) {
  ProbeSchedule s;
  s.family_ = ScheduleFamily::linear;
  s.n_ = n;
  s.r0_ = r0;
  s.step_ = step;
  s.timeouts_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    s.timeouts_.push_back(r0 + static_cast<double>(i) * step);
  s.materialize_cumulative();
  return s;
}

ProbeSchedule ProbeSchedule::from_timeouts(std::vector<double> timeouts) {
  ProbeSchedule s;
  s.family_ = ScheduleFamily::custom;
  s.n_ = static_cast<unsigned>(timeouts.size());
  s.r0_ = timeouts.empty() ? 0.0 : timeouts.front();
  s.timeouts_ = std::move(timeouts);
  s.materialize_cumulative();
  return s;
}

ProbeSchedule ProbeSchedule::restore(ScheduleFamily family, unsigned n,
                                     double r0, double factor, double step,
                                     std::vector<double> timeouts) {
  switch (family) {
    case ScheduleFamily::uniform:
      return uniform(n, r0);
    case ScheduleFamily::geometric:
      return geometric(n, r0, factor);
    case ScheduleFamily::linear:
      return linear(n, r0, step);
    case ScheduleFamily::custom:
      return from_timeouts(std::move(timeouts));
  }
  ZC_ASSERT(false);
  return ProbeSchedule{};
}

void ProbeSchedule::materialize_cumulative() {
  cumulative_.clear();
  cumulative_.reserve(timeouts_.size());
  double total = 0.0;
  for (double r : timeouts_) {
    total += r;
    cumulative_.push_back(total);
  }
  // Bitwise comparison on purpose: only an exactly-constant vector may
  // take the uniform `i * r` arithmetic, anything else keeps the
  // running sums above.
  constant_timeouts_ = !timeouts_.empty();
  for (double r : timeouts_) {
    if (std::bit_cast<std::uint64_t>(r) !=
        std::bit_cast<std::uint64_t>(timeouts_.front())) {
      constant_timeouts_ = false;
      break;
    }
  }
}

double ProbeSchedule::uniform_r() const {
  ZC_EXPECTS(is_effectively_uniform());
  // r0_ is the constant timeout for every effectively-uniform family:
  // the uniform/geometric/linear generator parameter, or the custom
  // vector's (all-equal) first element.
  return r0_;
}

double ProbeSchedule::timeout(unsigned i) const {
  ZC_EXPECTS(i >= 1 && i <= n_);
  if (is_uniform()) return r0_;
  return timeouts_[i - 1];
}

double ProbeSchedule::cumulative(unsigned i) const {
  ZC_EXPECTS(i <= n_);
  if (i == 0) return 0.0;
  // Effectively uniform: `i * r` exactly as the pre-schedule evaluators
  // computed it — a running sum would round differently and break byte
  // compatibility (fl(fl(r+r)+r) != fl(3r) in general).
  if (is_effectively_uniform()) return static_cast<double>(i) * r0_;
  return cumulative_[i - 1];
}

std::vector<double> ProbeSchedule::to_vector() const {
  if (is_uniform()) return std::vector<double>(n_, r0_);
  return timeouts_;
}

void ProbeSchedule::validate(bool allow_zero_r) const {
  ZC_REQUIRE(n_ >= 1, "ProbeSchedule.n must be >= 1 (got 0)");
  const auto check_timeout = [&](double r, const char* field) {
    ZC_REQUIRE(std::isfinite(r),
               std::string(field) + " must be finite");
    if (allow_zero_r) {
      ZC_REQUIRE(r >= 0.0, std::string(field) + " must be >= 0");
    } else {
      ZC_REQUIRE(r > 0.0, std::string(field) + " must be > 0");
    }
  };
  if (is_uniform()) {
    check_timeout(r0_, "ProbeSchedule.r");
    return;
  }
  if (family_ == ScheduleFamily::geometric) {
    ZC_REQUIRE(std::isfinite(factor_) && factor_ > 0.0,
               "ProbeSchedule.factor must be finite and > 0");
  }
  if (family_ == ScheduleFamily::linear)
    ZC_REQUIRE(std::isfinite(step_), "ProbeSchedule.step must be finite");
  ZC_ASSERT(timeouts_.size() == n_);
  for (unsigned i = 0; i < n_; ++i) {
    check_timeout(timeouts_[i], ("ProbeSchedule.timeouts[" +
                                 std::to_string(i + 1) + "]")
                                    .c_str());
  }
}

std::string ProbeSchedule::describe() const {
  std::ostringstream out;
  switch (family_) {
    case ScheduleFamily::uniform:
      out << "uniform(n=" << n_ << ", r=" << format_sig(r0_, 6) << ")";
      break;
    case ScheduleFamily::geometric:
      out << "geometric(n=" << n_ << ", r0=" << format_sig(r0_, 6)
          << ", factor=" << format_sig(factor_, 6) << ")";
      break;
    case ScheduleFamily::linear:
      out << "linear(n=" << n_ << ", r0=" << format_sig(r0_, 6)
          << ", step=" << format_sig(step_, 6) << ")";
      break;
    case ScheduleFamily::custom: {
      out << "custom(n=" << n_ << ", [";
      for (unsigned i = 0; i < n_; ++i) {
        if (i > 0) out << ", ";
        out << format_sig(timeouts_[i], 6);
      }
      out << "])";
      break;
    }
  }
  return out.str();
}

}  // namespace zc::core
