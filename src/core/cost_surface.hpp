#pragma once

/// \file cost_surface.hpp
/// Amortized evaluation of the model over an (n, r) grid. For a fixed r,
/// C(n, r) and Err(n, r) for every n share one survival ladder
/// S(r), S(2r), ..., S(n_max r): the path products pi_n(r) and the Kahan
/// prefix sum sum_{i<n} pi_i(r) extend incrementally, so a whole r-column
/// costs O(n_max) survival evaluations instead of the O(n_max^2) a
/// per-(n, r) mean_cost scan pays. The incremental recurrence performs
/// the *same* floating-point operations in the same order as
/// mean_cost / error_probability, so every surface entry is bitwise
/// equal to the pointwise evaluation it replaces.
///
/// Columns are independent, which is what the parallel grid evaluators
/// exploit: exec::parallel_for over r-columns, deterministic at any
/// thread count.

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "exec/parallel.hpp"

namespace zc::core {

/// Evaluator of C(n, r) / Err(n, r) columns for n = 1..n_max.
class CostSurface {
 public:
  CostSurface(ScenarioParams scenario, unsigned n_max);

  [[nodiscard]] unsigned n_max() const noexcept { return n_max_; }
  [[nodiscard]] const ScenarioParams& scenario() const noexcept {
    return scenario_;
  }

  /// The delay-distribution-dependent piece of one r-column: the survival
  /// ladder S(r), S(2r), ..., S(n_max r). It is a pure function of
  /// (F_X, n_max, r) — independent of (q, c, E) — which is what lets the
  /// engine's SurfaceCache share one ladder across scenarios that differ
  /// only in cost weights or occupancy. Evaluating a column through a
  /// ladder reproduces the direct evaluation bitwise: the survival values
  /// are the identical doubles, consumed in the identical order.
  struct SurvivalLadder {
    double r = 0.0;
    std::vector<double> survival;  ///< survival[k-1] = S(k r), k = 1..n_max
  };

  /// Precompute the ladder for `r` against `fx` (n_max rungs).
  [[nodiscard]] static SurvivalLadder make_ladder(
      const prob::DelayDistribution& fx, unsigned n_max, double r);

  /// Schedule ladder: survival[k-1] = S(t_k) with t_k = r_1 + ... + r_k
  /// the schedule's cumulative listening times. For a uniform schedule
  /// this stores the identical doubles as `make_ladder(fx, n, r)` — the
  /// cached-ladder trick carries over to non-uniform schedules unchanged,
  /// one ladder per schedule shared by every prefix length. `ladder.r`
  /// holds r_1 (only consumed by the uniform column arithmetic).
  [[nodiscard]] static SurvivalLadder make_ladder(
      const prob::DelayDistribution& fx, const ProbeSchedule& schedule);

  /// This surface's ladder for `r`.
  [[nodiscard]] SurvivalLadder ladder(double r) const;

  /// One column of mean costs: result[n-1] == mean_cost(scenario, {n, r})
  /// bitwise, for n = 1..n_max, in O(n_max) survival calls.
  [[nodiscard]] std::vector<double> cost_column(double r) const;
  /// Same column evaluated through a precomputed ladder (bitwise equal).
  [[nodiscard]] std::vector<double> cost_column(
      const SurvivalLadder& ladder) const;

  /// One column of collision probabilities: result[n-1] ==
  /// error_probability(scenario, {n, r}) bitwise, for n = 1..n_max.
  [[nodiscard]] std::vector<double> error_column(double r) const;
  /// Same column evaluated through a precomputed ladder (bitwise equal).
  [[nodiscard]] std::vector<double> error_column(
      const SurvivalLadder& ladder) const;

  /// Prefix column for a schedule: result[m-1] equals
  /// mean_cost(scenario, prefix_m) bitwise, where prefix_m keeps the
  /// first m timeouts, for m = 1..schedule.n(). All prefixes share one
  /// schedule ladder (O(n) survival calls for the whole column). Uniform
  /// schedules take the historical (n, r) column path.
  [[nodiscard]] std::vector<double> cost_column(
      const ProbeSchedule& schedule) const;
  /// Same for collision probabilities.
  [[nodiscard]] std::vector<double> error_column(
      const ProbeSchedule& schedule) const;

  /// Point evaluations through the column machinery: bitwise equal to
  /// mean_cost / error_probability on the full schedule.
  [[nodiscard]] double cost_at(const ProbeSchedule& schedule) const;
  [[nodiscard]] double error_at(const ProbeSchedule& schedule) const;

  /// The n minimizing C(n, r) and the minimal cost, walking the column
  /// incrementally with the same early-stop rule as optimize.cpp's
  /// optimal_n (stop after 8 consecutive cost rises): identical results,
  /// one survival call per visited n.
  struct ColumnMin {
    unsigned n = 1;
    double cost = 0.0;
  };
  [[nodiscard]] ColumnMin min_over_n(double r) const;

  /// A fully evaluated surface over an r-grid; values laid out row-major
  /// by n so a fixed-n curve is one contiguous row.
  struct Surface {
    std::vector<double> r_grid;
    unsigned n_max = 0;
    std::vector<double> values;  ///< size n_max * r_grid.size()

    [[nodiscard]] double at(unsigned n, std::size_t j) const {
      return values[(n - 1) * r_grid.size() + j];
    }
    /// Copy of the fixed-n curve over the whole r-grid.
    [[nodiscard]] std::vector<double> row(unsigned n) const;
  };

  /// Evaluate all cost columns over `r_grid`, one parallel task per
  /// column chunk. Deterministic at any opts.threads.
  [[nodiscard]] Surface costs(std::vector<double> r_grid,
                              const exec::ExecOptions& opts = {}) const;

  /// Same for collision probabilities.
  [[nodiscard]] Surface error_probabilities(
      std::vector<double> r_grid, const exec::ExecOptions& opts = {}) const;

 private:
  ScenarioParams scenario_;
  unsigned n_max_;
};

}  // namespace zc::core
