#include "core/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "core/no_answer.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

CostDistribution::CostDistribution(const ScenarioParams& scenario,
                                   const ProtocolParams& protocol,
                                   std::size_t max_probes)
    : per_probe_(protocol.r + scenario.probe_cost()),
      error_cost_(scenario.error_cost()) {
  const unsigned n = protocol.n;
  ZC_EXPECTS(n >= 1);
  ZC_EXPECTS(max_probes >= n);

  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), n, protocol.r);

  // Per-attempt events over an occupied address:
  //   restart with i probes: q (pi_{i-1} - pi_i), i = 1..n
  //   error  with n probes:  q pi_n
  // and over a free address: ok with n probes: 1-q.
  std::vector<double> restart(n + 1, 0.0);
  for (unsigned i = 1; i <= n; ++i) restart[i] = q * (pi[i - 1] - pi[i]);
  const double p_error_attempt = q * pi[n];
  const double p_ok_attempt = 1.0 - q;

  // g[t] = P(the process is back in `start` having sent t probes).
  // Lattice convolution of the restart distribution.
  ok_.assign(max_probes + 1, 0.0);
  error_.assign(max_probes + 1, 0.0);
  std::vector<double> g(max_probes + 1, 0.0);
  g[0] = 1.0;
  numerics::KahanSum absorbed;
  for (std::size_t t = 0; t <= max_probes; ++t) {
    if (g[t] == 0.0) continue;
    if (t + n <= max_probes) {
      ok_[t + n] += g[t] * p_ok_attempt;
      error_[t + n] += g[t] * p_error_attempt;
      absorbed.add(g[t] * (p_ok_attempt + p_error_attempt));
    }
    for (unsigned i = 1; i <= n; ++i) {
      if (t + i <= max_probes) g[t + i] += g[t] * restart[i];
    }
  }
  tail_ = std::max(0.0, 1.0 - absorbed.value());
}

double CostDistribution::error_probability() const {
  numerics::KahanSum acc;
  for (const double p : error_) acc.add(p);
  return acc.value();
}

double CostDistribution::mean() const {
  numerics::KahanSum acc;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    acc.add(ok_[t] * cost_of(t, false));
    acc.add(error_[t] * cost_of(t, true));
  }
  return acc.value();
}

double CostDistribution::variance() const {
  const double m = mean();
  numerics::KahanSum acc;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    const double d_ok = cost_of(t, false) - m;
    const double d_err = cost_of(t, true) - m;
    acc.add(ok_[t] * d_ok * d_ok);
    acc.add(error_[t] * d_err * d_err);
  }
  return acc.value();
}

double CostDistribution::mean_given_ok() const {
  numerics::KahanSum mass, weighted;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    mass.add(ok_[t]);
    weighted.add(ok_[t] * cost_of(t, false));
  }
  ZC_EXPECTS(mass.value() > 0.0);
  return weighted.value() / mass.value();
}

double CostDistribution::mean_given_error() const {
  numerics::KahanSum mass, weighted;
  for (std::size_t t = 0; t < error_.size(); ++t) {
    mass.add(error_[t]);
    weighted.add(error_[t] * cost_of(t, true));
  }
  ZC_EXPECTS(mass.value() > 0.0);
  return weighted.value() / mass.value();
}

double CostDistribution::cdf(double x) const {
  numerics::KahanSum acc;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    if (cost_of(t, false) <= x) acc.add(ok_[t]);
    if (cost_of(t, true) <= x) acc.add(error_[t]);
  }
  return std::min(1.0, acc.value());
}

namespace {

/// The accumulated atom mass covers `p` "up to rounding": the Kahan sum
/// of the atoms and the `1 - tail_` bound are computed along different
/// floating-point paths, so a `p` within rounding error of the total
/// mass may come up short by a few ulps even though the precondition
/// `p < 1 - tail_` held. 16-ulp relative slack decides the boundary.
bool covers_within_rounding(double accumulated, double p) noexcept {
  constexpr double kRelTol = 16.0 * std::numeric_limits<double>::epsilon();
  return accumulated >= p - kRelTol * std::max(std::fabs(p), 1.0);
}

}  // namespace

double CostDistribution::quantile(double p) const {
  ZC_EXPECTS(0.0 <= p && p < 1.0);
  ZC_EXPECTS(p < 1.0 - tail_);
  // Gather (cost, prob) atoms, sort by cost, accumulate.
  std::vector<std::pair<double, double>> atoms;
  atoms.reserve(2 * ok_.size());
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    if (ok_[t] > 0.0) atoms.emplace_back(cost_of(t, false), ok_[t]);
    if (error_[t] > 0.0) atoms.emplace_back(cost_of(t, true), error_[t]);
  }
  std::sort(atoms.begin(), atoms.end());
  numerics::KahanSum acc;
  for (const auto& [cost, prob] : atoms) {
    acc.add(prob);
    if (acc.value() >= p) return cost;
  }
  // p sits within rounding error of the total atom mass (it can sum to
  // slightly less than 1 - tail_): the last atom is the quantile.
  ZC_ASSERT(!atoms.empty() && covers_within_rounding(acc.value(), p));
  return atoms.back().first;
}

std::size_t CostDistribution::probes_quantile(double p) const {
  ZC_EXPECTS(0.0 <= p && p < 1.0);
  ZC_EXPECTS(p < 1.0 - tail_);
  numerics::KahanSum acc;
  std::size_t last_support = 0;
  bool any_mass = false;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    const double mass = ok_[t] + error_[t];
    if (mass > 0.0) {
      last_support = t;
      any_mass = true;
    }
    acc.add(mass);
    // For p = 0 return the smallest support point, not index 0.
    if (acc.value() >= p && acc.value() > 0.0) return t;
  }
  // Same boundary as quantile(): fall back to the largest support point
  // when p is within rounding error of the accumulated mass.
  ZC_ASSERT(any_mass && covers_within_rounding(acc.value(), p));
  return last_support;
}

double CostDistribution::cost_of(std::size_t probes, bool collision) const {
  return static_cast<double>(probes) * per_probe_ +
         (collision ? error_cost_ : 0.0);
}

}  // namespace zc::core
