#include "core/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "core/no_answer.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

CostDistribution::CostDistribution(const ScenarioParams& scenario,
                                   const ProtocolParams& protocol,
                                   std::size_t max_probes)
    : per_probe_(protocol.r + scenario.probe_cost()),
      error_cost_(scenario.error_cost()) {
  const unsigned n = protocol.n;
  ZC_EXPECTS(n >= 1);
  ZC_EXPECTS(max_probes >= n);

  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), n, protocol.r);

  // Per-attempt events over an occupied address:
  //   restart with i probes: q (pi_{i-1} - pi_i), i = 1..n
  //   error  with n probes:  q pi_n
  // and over a free address: ok with n probes: 1-q.
  std::vector<double> restart(n + 1, 0.0);
  for (unsigned i = 1; i <= n; ++i) restart[i] = q * (pi[i - 1] - pi[i]);
  const double p_error_attempt = q * pi[n];
  const double p_ok_attempt = 1.0 - q;

  // g[t] = P(the process is back in `start` having sent t probes).
  // Lattice convolution of the restart distribution.
  ok_.assign(max_probes + 1, 0.0);
  error_.assign(max_probes + 1, 0.0);
  std::vector<double> g(max_probes + 1, 0.0);
  g[0] = 1.0;
  numerics::KahanSum absorbed;
  for (std::size_t t = 0; t <= max_probes; ++t) {
    if (g[t] == 0.0) continue;
    if (t + n <= max_probes) {
      ok_[t + n] += g[t] * p_ok_attempt;
      error_[t + n] += g[t] * p_error_attempt;
      absorbed.add(g[t] * (p_ok_attempt + p_error_attempt));
    }
    for (unsigned i = 1; i <= n; ++i) {
      if (t + i <= max_probes) g[t + i] += g[t] * restart[i];
    }
  }
  tail_ = std::max(0.0, 1.0 - absorbed.value());
}

CostDistribution::CostDistribution(const ScenarioParams& scenario,
                                   const ProbeSchedule& schedule,
                                   std::size_t max_probes)
    : per_probe_(0.0), error_cost_(scenario.error_cost()),
      probe_cost_(scenario.probe_cost()) {
  if (schedule.is_effectively_uniform()) {
    // Bit-compatible special case: the historical lattice construction.
    *this = CostDistribution(
        scenario, ProtocolParams{schedule.n(), schedule.uniform_r()},
        max_probes);
    return;
  }
  schedule.validate(/*allow_zero_r=*/true);
  lattice_exact_ = false;
  const unsigned n = schedule.n();
  ZC_EXPECTS(max_probes >= n);

  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), schedule);

  // Per-attempt events as in the uniform case, but each event now also
  // carries a deterministic amount of listening time: a restart after i
  // probes adds l_i = t_i = r_1+...+r_i, an absorbed attempt adds t_n.
  std::vector<double> restart(n + 1, 0.0);
  std::vector<double> listen(n + 1, 0.0);
  for (unsigned i = 1; i <= n; ++i) {
    restart[i] = q * (pi[i - 1] - pi[i]);
    listen[i] = schedule.cumulative(i);
  }
  const double p_error_attempt = q * pi[n];
  const double p_ok_attempt = 1.0 - q;
  const double listen_full = schedule.total_listening();

  // g0/g1/g2: mass and first/second listening-time moments of "back in
  // `start` having sent t probes". A deterministic shift by l propagates
  // moments exactly: m1 += l m0, m2 += 2 l m1 + l^2 m0.
  ok_.assign(max_probes + 1, 0.0);
  error_.assign(max_probes + 1, 0.0);
  ok_m1_.assign(max_probes + 1, 0.0);
  ok_m2_.assign(max_probes + 1, 0.0);
  err_m1_.assign(max_probes + 1, 0.0);
  err_m2_.assign(max_probes + 1, 0.0);
  std::vector<double> g0(max_probes + 1, 0.0);
  std::vector<double> g1(max_probes + 1, 0.0);
  std::vector<double> g2(max_probes + 1, 0.0);
  g0[0] = 1.0;
  numerics::KahanSum absorbed;
  for (std::size_t t = 0; t <= max_probes; ++t) {
    if (g0[t] == 0.0) continue;
    if (t + n <= max_probes) {
      const double m1 = g1[t] + listen_full * g0[t];
      const double m2 =
          g2[t] + 2.0 * listen_full * g1[t] + listen_full * listen_full * g0[t];
      ok_[t + n] += g0[t] * p_ok_attempt;
      ok_m1_[t + n] += m1 * p_ok_attempt;
      ok_m2_[t + n] += m2 * p_ok_attempt;
      error_[t + n] += g0[t] * p_error_attempt;
      err_m1_[t + n] += m1 * p_error_attempt;
      err_m2_[t + n] += m2 * p_error_attempt;
      absorbed.add(g0[t] * (p_ok_attempt + p_error_attempt));
    }
    for (unsigned i = 1; i <= n; ++i) {
      if (t + i > max_probes) continue;
      const double l = listen[i];
      g0[t + i] += g0[t] * restart[i];
      g1[t + i] += (g1[t] + l * g0[t]) * restart[i];
      g2[t + i] += (g2[t] + 2.0 * l * g1[t] + l * l * g0[t]) * restart[i];
    }
  }
  tail_ = std::max(0.0, 1.0 - absorbed.value());
}

double CostDistribution::error_probability() const {
  numerics::KahanSum acc;
  for (const double p : error_) acc.add(p);
  return acc.value();
}

double CostDistribution::mean() const {
  numerics::KahanSum acc;
  if (lattice_exact_) {
    for (std::size_t t = 0; t < ok_.size(); ++t) {
      acc.add(ok_[t] * cost_of(t, false));
      acc.add(error_[t] * cost_of(t, true));
    }
    return acc.value();
  }
  // cost = L + t c (+ E on collision); L-moments are tracked exactly.
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    const double postage = static_cast<double>(t) * probe_cost_;
    acc.add(ok_m1_[t] + ok_[t] * postage);
    acc.add(err_m1_[t] + error_[t] * (postage + error_cost_));
  }
  return acc.value();
}

double CostDistribution::variance() const {
  const double m = mean();
  numerics::KahanSum acc;
  if (lattice_exact_) {
    for (std::size_t t = 0; t < ok_.size(); ++t) {
      const double d_ok = cost_of(t, false) - m;
      const double d_err = cost_of(t, true) - m;
      acc.add(ok_[t] * d_ok * d_ok);
      acc.add(error_[t] * d_err * d_err);
    }
    return acc.value();
  }
  // E[(L + a)^2 1{atom}] = m2 + 2 a m1 + a^2 m0 with deterministic a.
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    const double a_ok = static_cast<double>(t) * probe_cost_;
    const double a_err = a_ok + error_cost_;
    acc.add(ok_m2_[t] + 2.0 * a_ok * ok_m1_[t] + a_ok * a_ok * ok_[t]);
    acc.add(err_m2_[t] + 2.0 * a_err * err_m1_[t] + a_err * a_err * error_[t]);
  }
  return acc.value() - m * m;
}

double CostDistribution::mean_given_ok() const {
  numerics::KahanSum mass, weighted;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    mass.add(ok_[t]);
    if (lattice_exact_) {
      weighted.add(ok_[t] * cost_of(t, false));
    } else {
      weighted.add(ok_m1_[t] + ok_[t] * static_cast<double>(t) * probe_cost_);
    }
  }
  ZC_EXPECTS(mass.value() > 0.0);
  return weighted.value() / mass.value();
}

double CostDistribution::mean_given_error() const {
  numerics::KahanSum mass, weighted;
  for (std::size_t t = 0; t < error_.size(); ++t) {
    mass.add(error_[t]);
    if (lattice_exact_) {
      weighted.add(error_[t] * cost_of(t, true));
    } else {
      weighted.add(err_m1_[t] +
                   error_[t] * (static_cast<double>(t) * probe_cost_ +
                                error_cost_));
    }
  }
  ZC_EXPECTS(mass.value() > 0.0);
  return weighted.value() / mass.value();
}

double CostDistribution::cdf(double x) const {
  ZC_EXPECTS(lattice_exact_);
  numerics::KahanSum acc;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    if (cost_of(t, false) <= x) acc.add(ok_[t]);
    if (cost_of(t, true) <= x) acc.add(error_[t]);
  }
  return std::min(1.0, acc.value());
}

namespace {

/// The accumulated atom mass covers `p` "up to rounding": the Kahan sum
/// of the atoms and the `1 - tail_` bound are computed along different
/// floating-point paths, so a `p` within rounding error of the total
/// mass may come up short by a few ulps even though the precondition
/// `p < 1 - tail_` held. 16-ulp relative slack decides the boundary.
bool covers_within_rounding(double accumulated, double p) noexcept {
  constexpr double kRelTol = 16.0 * std::numeric_limits<double>::epsilon();
  return accumulated >= p - kRelTol * std::max(std::fabs(p), 1.0);
}

}  // namespace

double CostDistribution::quantile(double p) const {
  ZC_EXPECTS(lattice_exact_);
  ZC_EXPECTS(0.0 <= p && p < 1.0);
  ZC_EXPECTS(p < 1.0 - tail_);
  // Gather (cost, prob) atoms, sort by cost, accumulate.
  std::vector<std::pair<double, double>> atoms;
  atoms.reserve(2 * ok_.size());
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    if (ok_[t] > 0.0) atoms.emplace_back(cost_of(t, false), ok_[t]);
    if (error_[t] > 0.0) atoms.emplace_back(cost_of(t, true), error_[t]);
  }
  std::sort(atoms.begin(), atoms.end());
  numerics::KahanSum acc;
  for (const auto& [cost, prob] : atoms) {
    acc.add(prob);
    if (acc.value() >= p) return cost;
  }
  // p sits within rounding error of the total atom mass (it can sum to
  // slightly less than 1 - tail_): the last atom is the quantile.
  ZC_ASSERT(!atoms.empty() && covers_within_rounding(acc.value(), p));
  return atoms.back().first;
}

std::size_t CostDistribution::probes_quantile(double p) const {
  ZC_EXPECTS(0.0 <= p && p < 1.0);
  ZC_EXPECTS(p < 1.0 - tail_);
  numerics::KahanSum acc;
  std::size_t last_support = 0;
  bool any_mass = false;
  for (std::size_t t = 0; t < ok_.size(); ++t) {
    const double mass = ok_[t] + error_[t];
    if (mass > 0.0) {
      last_support = t;
      any_mass = true;
    }
    acc.add(mass);
    // For p = 0 return the smallest support point, not index 0.
    if (acc.value() >= p && acc.value() > 0.0) return t;
  }
  // Same boundary as quantile(): fall back to the largest support point
  // when p is within rounding error of the accumulated mass.
  ZC_ASSERT(any_mass && covers_within_rounding(acc.value(), p));
  return last_support;
}

double CostDistribution::cost_of(std::size_t probes, bool collision) const {
  ZC_EXPECTS(lattice_exact_);
  return static_cast<double>(probes) * per_probe_ +
         (collision ? error_cost_ : 0.0);
}

}  // namespace zc::core
