#pragma once

/// \file distribution.hpp
/// Exact distribution of the total initialization cost (extension beyond
/// the paper, which reports only the mean of Eq. (3)).
///
/// Per attempt the probe count and outcome follow directly from the DRM:
/// with probability 1-q the address is free and exactly n probes are
/// sent (outcome ok); with probability q the address is in use and the
/// attempt consumes i probes with probability pi_{i-1} - pi_i (reply in
/// round i; restart) or n probes with probability pi_n (no reply at all;
/// outcome error). Summing over the geometric number of attempts gives a
/// lattice distribution over the total probe count T, from which the
/// full cost law  cost = T (r+c) + E 1{error}  follows.
///
/// This yields user-perceived *worst-case* quantities (e.g. the 99.9th
/// percentile of configuration time) that the mean-based analysis cannot
/// provide.

#include <vector>

#include "core/params.hpp"

namespace zc::core {

/// The exact lattice distribution of the total probe count and outcome.
class CostDistribution {
 public:
  /// Computes the distribution, truncating the restart recursion once
  /// `max_probes` total probes are reached. The truncated mass (reported
  /// by `truncated_tail`) decays geometrically in max_probes.
  CostDistribution(const ScenarioParams& scenario,
                   const ProtocolParams& protocol,
                   std::size_t max_probes = 4096);

  /// Schedule generalization. For a uniform schedule this is bit-identical
  /// to the (n, r) constructor. For non-uniform schedules the total cost
  /// is no longer a function of the probe count alone (a restart after i
  /// probes contributes t_i = r_1+...+r_i listening time, which differs
  /// per attempt history), so alongside the probe-count lattice the
  /// constructor propagates the exact first and second moments of the
  /// accumulated listening time per lattice cell. mean(), variance(),
  /// error_probability(), the conditional means, and probes_quantile()
  /// remain exact; cdf()/quantile()/cost_of() require the uniform cost
  /// lattice (see has_cost_lattice()).
  CostDistribution(const ScenarioParams& scenario,
                   const ProbeSchedule& schedule,
                   std::size_t max_probes = 4096);

  /// True when total cost is a function of the probe count (uniform
  /// schedules): cdf(), quantile() and cost_of() are only available then.
  [[nodiscard]] bool has_cost_lattice() const { return lattice_exact_; }

  /// P(T = t and the run ends in `ok`); index t = probes sent.
  [[nodiscard]] const std::vector<double>& ok_pmf() const { return ok_; }
  /// P(T = t and the run ends in `error`).
  [[nodiscard]] const std::vector<double>& error_pmf() const {
    return error_;
  }
  /// Probability mass beyond the truncation horizon.
  [[nodiscard]] double truncated_tail() const { return tail_; }

  /// P(collision) — must agree with Eq. (4) up to the truncated tail.
  [[nodiscard]] double error_probability() const;

  /// Mean / variance of the total cost — must agree with Eq. (3) and the
  /// DRM second-moment system up to the truncated tail.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  /// Conditional means given the outcome; require the conditioning event
  /// to have positive (untruncated) mass.
  [[nodiscard]] double mean_given_ok() const;
  [[nodiscard]] double mean_given_error() const;

  /// P(total cost <= x).
  [[nodiscard]] double cdf(double x) const;

  /// Smallest cost x with P(cost <= x) >= p. Requires p in [0, 1) and
  /// p < 1 - truncated_tail.
  [[nodiscard]] double quantile(double p) const;

  /// Smallest probe count t with P(T <= t) >= p (irrespective of
  /// outcome); same domain restrictions as quantile().
  [[nodiscard]] std::size_t probes_quantile(double p) const;

  /// The cost value of outcome (t probes, collision?) under this
  /// scenario: t (r+c) + E 1{collision}. Requires has_cost_lattice().
  [[nodiscard]] double cost_of(std::size_t probes, bool collision) const;

 private:
  double per_probe_;
  double error_cost_;
  double probe_cost_ = 0.0;
  bool lattice_exact_ = true;
  std::vector<double> ok_;
  std::vector<double> error_;
  // Listening-time moments per absorbed lattice cell (non-uniform
  // schedules only): m1 = E[L 1{absorbed at t}], m2 = E[L^2 1{...}].
  std::vector<double> ok_m1_, ok_m2_;
  std::vector<double> err_m1_, err_m2_;
  double tail_ = 0.0;
};

}  // namespace zc::core
