#pragma once

/// \file params.hpp
/// Parameters of the zeroconf cost model (Sec. 3). Two kinds, mirroring
/// Sec. 4.2's distinction:
///  - ProtocolParams: `n` and `r`, under the control of the protocol
///    designer / consumer-electronics manufacturer;
///  - ScenarioParams: `q`, `c`, `E` and the reply-delay distribution F_X,
///    properties of the deployment that can only be predicted.

#include <memory>

#include "core/schedule.hpp"
#include "prob/delay.hpp"

namespace zc::core {

/// Number of IPv4 link-local addresses allocated by IANA
/// (169.254.1.0 - 169.254.254.255; Sec. 1).
inline constexpr unsigned kAddressSpaceSize = 65024;

/// Designer-controlled knobs.
struct ProtocolParams {
  unsigned n = 4;  ///< maximum number of ARP probes (draft: 4)
  double r = 2.0;  ///< listening period after each probe, seconds (draft: 2 or 0.2)

  /// The one place (n, r) domain checks live: n >= 1 and r finite and
  /// > 0. Throws zc::ContractViolation naming the offending field. The
  /// closed forms (Eq. 3/4) have a well-defined r = 0 limit exercised by
  /// the figure benches, so the analytic evaluators pass
  /// `allow_zero_r = true`; everything user-facing (engine specs, CLI)
  /// uses the strict default.
  void validate(bool allow_zero_r = false) const;

  /// The (n, r) pair viewed as a per-probe schedule: uniform(n, r).
  /// The bridge between the paper's parameterization and the
  /// schedule-based evaluators; bit-compatible by construction.
  [[nodiscard]] ProbeSchedule schedule() const {
    return ProbeSchedule::uniform(n, r);
  }
};

/// Deployment-specific inputs of the cost model.
class ScenarioParams {
 public:
  /// \param q            probability a freshly picked address is in use
  /// \param probe_cost   c, the "postage" charged per ARP probe
  /// \param error_cost   E, the cost of erroneously accepting an address
  /// \param reply_delay  F_X, possibly defective reply-delay distribution
  ScenarioParams(double q, double probe_cost, double error_cost,
                 std::shared_ptr<const prob::DelayDistribution> reply_delay);

  /// q from a host count: q = m / 65024 (Sec. 3.1, one address per host).
  [[nodiscard]] static double q_from_hosts(unsigned hosts_on_link);

  [[nodiscard]] double q() const noexcept { return q_; }
  [[nodiscard]] double probe_cost() const noexcept { return probe_cost_; }
  [[nodiscard]] double error_cost() const noexcept { return error_cost_; }
  [[nodiscard]] const prob::DelayDistribution& reply_delay() const noexcept {
    return *reply_delay_;
  }
  [[nodiscard]] std::shared_ptr<const prob::DelayDistribution>
  reply_delay_ptr() const noexcept {
    return reply_delay_;
  }

  /// Copy with a different error cost (used by calibration).
  [[nodiscard]] ScenarioParams with_error_cost(double error_cost) const;
  /// Copy with a different probe cost (used by calibration).
  [[nodiscard]] ScenarioParams with_probe_cost(double probe_cost) const;
  /// Copy with a different q.
  [[nodiscard]] ScenarioParams with_q(double q) const;
  /// Copy with a different reply-delay distribution.
  [[nodiscard]] ScenarioParams with_reply_delay(
      std::shared_ptr<const prob::DelayDistribution> reply_delay) const;

 private:
  double q_;
  double probe_cost_;
  double error_cost_;
  std::shared_ptr<const prob::DelayDistribution> reply_delay_;
};

/// Scenario whose F_X is the paper's shifted defective exponential
/// (Sec. 4.3), keeping the physical knobs (loss, lambda, d) accessible —
/// needed by calibration and sensitivity analysis.
struct ExponentialScenario {
  double q = 1000.0 / kAddressSpaceSize;  ///< address-in-use probability
  double probe_cost = 2.0;                ///< c
  double error_cost = 1e35;               ///< E
  double loss = 1e-15;                    ///< 1 - l, reply-never-arrives prob.
  double lambda = 10.0;                   ///< rate; mean reply = d + 1/lambda
  double round_trip = 1.0;                ///< d, round-trip delay floor

  [[nodiscard]] ScenarioParams to_params() const;
};

}  // namespace zc::core
