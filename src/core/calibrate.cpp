#include "core/calibrate.hpp"

#include <cmath>
#include <limits>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "numerics/grid.hpp"
#include "numerics/roots.hpp"

namespace zc::core {

namespace {

/// Cost of the strongest competitor: min over k != n* of C_k(r_opt(k)).
struct Competitor {
  double cost = std::numeric_limits<double>::infinity();
  unsigned n = 0;
};

Competitor best_competitor(const ScenarioParams& scenario, unsigned n_star,
                           const CalibrateOptions& opts) {
  Competitor best;
  for (unsigned k = 1; k <= opts.n_max; ++k) {
    if (k == n_star) continue;
    const CostMinimum m = optimal_r(scenario, k, opts.r_opts);
    if (m.cost < best.cost) {
      best.cost = m.cost;
      best.n = k;
    }
  }
  return best;
}

}  // namespace

std::optional<double> error_cost_for_stationary_r(
    const ScenarioParams& scenario, const ProtocolParams& target, double c,
    const CalibrateOptions& opts) {
  ZC_EXPECTS(target.n >= 1);
  ZC_EXPECTS(target.r > 0.0);
  const ScenarioParams base = scenario.with_probe_cost(c);
  const auto slope_at_target = [&](double log10_e) {
    const ScenarioParams s = base.with_error_cost(std::pow(10.0, log10_e));
    return cost_derivative_r(s, target.n, target.r);
  };
  // dC/dr at r* decreases monotonically in E (the error term's negative
  // slope scales with E); bracket the sign change in log10 E.
  const auto bracket = numerics::find_bracket(
      slope_at_target, opts.log10_e_min, opts.log10_e_max, 128);
  if (!bracket.has_value()) return std::nullopt;
  if (bracket->first == bracket->second)
    return std::pow(10.0, bracket->first);
  const auto root =
      numerics::brent_root(slope_at_target, bracket->first, bracket->second);
  if (!root.has_value() || !root->converged) return std::nullopt;
  return std::pow(10.0, root->x);
}

std::optional<Calibration> calibrate(const ScenarioParams& scenario,
                                     const ProtocolParams& target,
                                     const CalibrateOptions& opts) {
  ZC_EXPECTS(target.n >= 1 && target.n <= opts.n_max);
  ZC_EXPECTS(target.r > 0.0);

  // Residual of condition (ii) at probe cost c, with E = E(c) from (i):
  // positive when some competitor beats the target.
  const auto residual = [&](double c) -> std::optional<double> {
    const auto e = error_cost_for_stationary_r(scenario, target, c, opts);
    if (!e.has_value()) return std::nullopt;
    const ScenarioParams s =
        scenario.with_probe_cost(c).with_error_cost(*e);
    const double target_cost = mean_cost(s, target);
    return target_cost - best_competitor(s, target.n, opts).cost;
  };

  // Scan c upward for the first (+ -> -) transition: below it, a larger
  // probe count beats the target; above it the target leads (until, for
  // very large c, a smaller probe count eventually takes over again).
  const auto cs = numerics::logspace(opts.c_min, opts.c_max, 48);
  std::optional<double> prev_c, prev_h;
  std::optional<std::pair<double, double>> bracket;
  std::optional<double> first_feasible_c;  // smallest c with h <= 0
  for (const double c : cs) {
    const auto h = residual(c);
    if (!h.has_value()) continue;
    if (*h <= 0.0 && !first_feasible_c.has_value()) first_feasible_c = c;
    if (prev_h.has_value() && *prev_h > 0.0 && *h <= 0.0) {
      bracket = std::pair{*prev_c, c};
      break;
    }
    prev_c = c;
    prev_h = h;
  }
  if (!bracket.has_value()) {
    // No boundary inside the box. If the target is already optimal at the
    // smallest feasible c, the optimality window extends below c_min:
    // report that point instead of failing.
    if (!first_feasible_c.has_value()) return std::nullopt;
    bracket = std::pair{*first_feasible_c, *first_feasible_c};
  }

  // Bisection on the residual (Brent would need a total function; the
  // residual can be undefined off the E-bracket, so stay conservative).
  double lo = bracket->first, hi = bracket->second;
  for (int iter = 0; iter < 60 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto h = residual(mid);
    if (!h.has_value() || *h > 0.0)
      lo = mid;
    else
      hi = mid;
  }

  const double c_star = hi;
  const auto e_star =
      error_cost_for_stationary_r(scenario, target, c_star, opts);
  if (!e_star.has_value()) return std::nullopt;

  const ScenarioParams calibrated =
      scenario.with_probe_cost(c_star).with_error_cost(*e_star);
  const Competitor comp = best_competitor(calibrated, target.n, opts);

  Calibration out;
  out.error_cost = *e_star;
  out.probe_cost = c_star;
  out.competitor = comp.n;
  out.target_cost = mean_cost(calibrated, target);

  const JointOptimum joint =
      joint_optimum(calibrated, opts.n_max, opts.r_opts);
  out.target_is_optimal =
      joint.n == target.n &&
      std::fabs(joint.r - target.r) <= 0.05 * target.r &&
      joint.cost >= out.target_cost * (1.0 - 1e-6);
  return out;
}

}  // namespace zc::core
