#include "core/heterogeneous.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "core/no_answer.hpp"
#include "numerics/kahan.hpp"

namespace zc::core {

std::vector<double> pi_values_heterogeneous(
    const std::vector<HostClass>& classes, unsigned n, double r) {
  ZC_EXPECTS(!classes.empty());
  numerics::KahanSum weight_sum;
  for (const HostClass& h : classes) {
    ZC_EXPECTS(h.weight > 0.0);
    ZC_EXPECTS(h.reply_delay != nullptr);
    weight_sum.add(h.weight);
  }
  ZC_EXPECTS(std::fabs(weight_sum.value() - 1.0) <= 1e-9);

  std::vector<double> pi(n + 1, 0.0);
  pi[0] = 1.0;
  // pi_i = sum_h w_h pi_i^h: accumulate the per-class products.
  for (unsigned i = 1; i <= n; ++i) {
    numerics::KahanSum acc;
    for (const HostClass& h : classes) {
      const auto pi_h = pi_values(*h.reply_delay, i, r);
      acc.add(h.weight * pi_h[i]);
    }
    pi[i] = acc.value();
  }
  return pi;
}

double mean_cost_from_pi(double q, double probe_cost, double error_cost,
                         const ProtocolParams& protocol,
                         const std::vector<double>& pi) {
  ZC_EXPECTS(0.0 < q && q < 1.0);
  protocol.validate(/*allow_zero_r=*/true);
  ZC_EXPECTS(pi.size() == protocol.n + 1);
  const unsigned n = protocol.n;
  numerics::KahanSum pi_partial;
  for (unsigned i = 0; i < n; ++i) pi_partial.add(pi[i]);
  const double per_probe = protocol.r + probe_cost;
  const double numerator =
      per_probe *
          (static_cast<double>(n) * (1.0 - q) + q * pi_partial.value()) +
      q * error_cost * pi[n];
  const double denominator = 1.0 - q * (1.0 - pi[n]);
  ZC_ASSERT(denominator > 0.0);
  return numerator / denominator;
}

double error_probability_from_pi(double q, const std::vector<double>& pi) {
  ZC_EXPECTS(0.0 < q && q < 1.0);
  ZC_EXPECTS(!pi.empty());
  const double pi_n = pi.back();
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return q * pi_n / denominator;
}

double mean_cost_heterogeneous(double q, double probe_cost,
                               double error_cost,
                               const std::vector<HostClass>& classes,
                               const ProtocolParams& protocol) {
  return mean_cost_from_pi(
      q, probe_cost, error_cost, protocol,
      pi_values_heterogeneous(classes, protocol.n, protocol.r));
}

double error_probability_heterogeneous(double q,
                                       const std::vector<HostClass>& classes,
                                       const ProtocolParams& protocol) {
  return error_probability_from_pi(
      q, pi_values_heterogeneous(classes, protocol.n, protocol.r));
}

}  // namespace zc::core
