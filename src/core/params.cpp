#include "core/params.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::core {

void ProtocolParams::validate(bool allow_zero_r) const {
  ZC_REQUIRE(n >= 1, "ProtocolParams.n must be >= 1 (got 0)");
  ZC_REQUIRE(std::isfinite(r), "ProtocolParams.r must be finite");
  if (allow_zero_r) {
    ZC_REQUIRE(r >= 0.0, "ProtocolParams.r must be >= 0");
  } else {
    ZC_REQUIRE(r > 0.0, "ProtocolParams.r must be > 0");
  }
}

ScenarioParams::ScenarioParams(
    double q, double probe_cost, double error_cost,
    std::shared_ptr<const prob::DelayDistribution> reply_delay)
    : q_(q),
      probe_cost_(probe_cost),
      error_cost_(error_cost),
      reply_delay_(std::move(reply_delay)) {
  ZC_EXPECTS(0.0 < q_ && q_ < 1.0);
  ZC_EXPECTS(probe_cost_ >= 0.0);
  ZC_EXPECTS(error_cost_ >= 0.0);
  ZC_EXPECTS(reply_delay_ != nullptr);
}

double ScenarioParams::q_from_hosts(unsigned hosts_on_link) {
  ZC_EXPECTS(hosts_on_link >= 1);
  ZC_EXPECTS(hosts_on_link < kAddressSpaceSize);
  return static_cast<double>(hosts_on_link) / kAddressSpaceSize;
}

ScenarioParams ScenarioParams::with_error_cost(double error_cost) const {
  return ScenarioParams(q_, probe_cost_, error_cost, reply_delay_);
}

ScenarioParams ScenarioParams::with_probe_cost(double probe_cost) const {
  return ScenarioParams(q_, probe_cost, error_cost_, reply_delay_);
}

ScenarioParams ScenarioParams::with_q(double q) const {
  return ScenarioParams(q, probe_cost_, error_cost_, reply_delay_);
}

ScenarioParams ScenarioParams::with_reply_delay(
    std::shared_ptr<const prob::DelayDistribution> reply_delay) const {
  return ScenarioParams(q_, probe_cost_, error_cost_, std::move(reply_delay));
}

ScenarioParams ExponentialScenario::to_params() const {
  return ScenarioParams(
      q, probe_cost, error_cost,
      prob::paper_reply_delay(loss, lambda, round_trip));
}

}  // namespace zc::core
