#include "core/reliability.hpp"

#include <cmath>
#include <numbers>

#include "common/contract.hpp"
#include "core/drm.hpp"
#include "core/no_answer.hpp"
#include "markov/absorbing.hpp"

namespace zc::core {

double error_probability(const ScenarioParams& scenario,
                         const ProtocolParams& protocol) {
  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), protocol.n, protocol.r);
  const double pi_n = pi[protocol.n];
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return q * pi_n / denominator;
}

double error_probability_numeric(const ScenarioParams& scenario,
                                 const ProtocolParams& protocol) {
  const DrmLayout layout{protocol.n};
  const markov::Dtmc chain = build_chain(scenario, protocol);
  const markov::AbsorbingAnalysis analysis(chain);
  return analysis.absorption_probability(DrmLayout::start(), layout.error());
}

double reliability(const ScenarioParams& scenario,
                   const ProtocolParams& protocol) {
  return 1.0 - error_probability(scenario, protocol);
}

double log10_error_probability(const ScenarioParams& scenario,
                               const ProtocolParams& protocol) {
  const double q = scenario.q();
  const double log_pi_n =
      log_pi(scenario.reply_delay(), protocol.n, protocol.r);
  const double pi_n = std::exp(log_pi_n);  // may underflow; only used in
                                           // the (then ~1) denominator
  const double denominator = 1.0 - q * (1.0 - pi_n);
  return (std::log(q) + log_pi_n - std::log(denominator)) / std::numbers::ln10;
}

double error_probability(const ScenarioParams& scenario,
                         const ProbeSchedule& schedule) {
  if (schedule.is_effectively_uniform())
    return error_probability(
        scenario, ProtocolParams{schedule.n(), schedule.uniform_r()});
  const double q = scenario.q();
  const auto pi = pi_values(scenario.reply_delay(), schedule);
  const double pi_n = pi[schedule.n()];
  const double denominator = 1.0 - q * (1.0 - pi_n);
  ZC_ASSERT(denominator > 0.0);
  return q * pi_n / denominator;
}

double error_probability_numeric(const ScenarioParams& scenario,
                                 const ProbeSchedule& schedule) {
  const DrmLayout layout{schedule.n()};
  const markov::Dtmc chain = build_chain(scenario, schedule);
  const markov::AbsorbingAnalysis analysis(chain);
  return analysis.absorption_probability(DrmLayout::start(), layout.error());
}

double reliability(const ScenarioParams& scenario,
                   const ProbeSchedule& schedule) {
  return 1.0 - error_probability(scenario, schedule);
}

double log10_error_probability(const ScenarioParams& scenario,
                               const ProbeSchedule& schedule) {
  if (schedule.is_effectively_uniform())
    return log10_error_probability(
        scenario, ProtocolParams{schedule.n(), schedule.uniform_r()});
  const double q = scenario.q();
  const double log_pi_n = log_pi(scenario.reply_delay(), schedule);
  const double pi_n = std::exp(log_pi_n);
  const double denominator = 1.0 - q * (1.0 - pi_n);
  return (std::log(q) + log_pi_n - std::log(denominator)) / std::numbers::ln10;
}

}  // namespace zc::core
