#pragma once

/// \file scenarios.hpp
/// The named parameter sets used throughout the paper's evaluation, so
/// that tests, benches and examples all reproduce exactly the published
/// settings.

#include "core/params.hpp"

namespace zc::core::scenarios {

/// Sec. 4.3 / Figures 2-6: d = 1, l = 1-1e-15, lambda = 10,
/// q = 1000/65024, c = 2, E = 1e35.
[[nodiscard]] ExponentialScenario figure2();

/// Sec. 4.5, r = 2 calibration setting: loss 1e-5, d = 1, lambda = 10,
/// q = 1000/65024. E and c are *outputs* of the calibration; the struct
/// carries the paper's derived E = 5e20, c = 3.5 as defaults.
[[nodiscard]] ExponentialScenario sec45_r2();

/// Sec. 4.5, r = 0.2 calibration setting: loss 1e-10, d = 0.1,
/// lambda = 100. Paper-derived defaults E = 1e35, c = 0.5.
[[nodiscard]] ExponentialScenario sec45_r02();

/// Sec. 6 assessment: keeps E = 5e20, c = 3.5 and q from the r = 2
/// calibration; realistic network with loss 1e-12, d = 1 ms, lambda = 10.
/// Paper result: optimum (n = 2, r ~ 1.75), collision ~ 4e-22.
[[nodiscard]] ExponentialScenario sec6();

/// The draft's recommended configurations [2].
[[nodiscard]] ProtocolParams draft_unreliable();  ///< n = 4, r = 2
[[nodiscard]] ProtocolParams draft_reliable();    ///< n = 4, r = 0.2

}  // namespace zc::core::scenarios
