#include "exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "common/contract.hpp"
#include "obs/metrics.hpp"

namespace zc::exec {

namespace {

/// Cumulative per-process tally behind suppressed_error_count().
std::atomic<std::uint64_t> g_suppressed{0};

/// Shared state of one parallel section. Held by shared_ptr so that a
/// queued helper task that fires after the section completed (all chunks
/// already claimed) still has valid state to look at.
struct Section {
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t chunks = 0;
  const std::function<void(ChunkRange)>* body = nullptr;
  const CancelToken* cancel = nullptr;

  std::atomic<std::size_t> next_chunk{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t submitted = 0;
  std::size_t finished = 0;
  std::exception_ptr error;
  std::uint64_t suppressed = 0;

  /// Claim and run chunks until none remain (or a stop is requested).
  /// Never throws; the first chunk exception is parked in `error` for the
  /// caller to rethrow, later ones are tallied in `suppressed`.
  void drain() {
    for (;;) {
      if (cancel != nullptr && cancel->stop_requested()) return;
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      ChunkRange range;
      range.index = c;
      range.begin = c * chunk_size;
      range.end = std::min(range.begin + chunk_size, n);
      try {
        (*body)(range);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) {
          error = std::current_exception();
        } else {
          ++suppressed;
        }
      }
    }
  }

  void mark_finished() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      ++finished;
    }
    done_cv.notify_all();
  }
};

/// Fold a finished section's suppressed tally into the process counter
/// and refresh the runtime gauge. Reading `section.suppressed` without
/// the mutex is safe here: every worker that could write it has passed
/// the finished/done_cv handshake (or ran inline on this thread).
void account_suppressed(const Section& section) {
  if (section.suppressed == 0) return;
  const std::uint64_t total =
      g_suppressed.fetch_add(section.suppressed, std::memory_order_relaxed) +
      section.suppressed;
  ZC_OBS_ONLY({
    if (obs::collection_enabled()) {
      obs::MetricSet set;
      // Cumulative, so the registry's merge-by-max keeps the latest value.
      set.set_gauge(set.gauge("exec.errors.suppressed"),
                    static_cast<double>(total));
      obs::Registry::global().publish(set);
    }
  });
}

}  // namespace

std::uint64_t suppressed_error_count() noexcept {
  return g_suppressed.load(std::memory_order_relaxed);
}

std::size_t resolve_chunk_size(std::size_t n, std::size_t requested) noexcept {
  if (requested > 0) return requested;
  // Target 64 chunks independent of thread count: enough slack for any
  // sane worker count to balance load, few enough that per-chunk
  // accumulators stay cheap.
  return std::max<std::size_t>(1, (n + 63) / 64);
}

std::size_t chunk_count(std::size_t n, std::size_t chunk_size) noexcept {
  if (n == 0 || chunk_size == 0) return 0;
  return (n + chunk_size - 1) / chunk_size;
}

void parallel_for_chunks(std::size_t n, std::size_t chunk_size,
                         const std::function<void(ChunkRange)>& body,
                         unsigned threads, const CancelToken* cancel) {
  ZC_EXPECTS(chunk_size > 0);
  if (n == 0) return;

  auto section = std::make_shared<Section>();
  section->n = n;
  section->chunk_size = chunk_size;
  section->chunks = chunk_count(n, chunk_size);
  section->body = &body;
  section->cancel = cancel;

  const unsigned requested = threads == 0 ? hardware_threads() : threads;
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      requested, section->chunks));

  if (workers <= 1) {
    // Inline serial path: chunks run in ascending order on this thread.
    section->drain();
  } else {
    ThreadPool& pool = ThreadPool::shared();
    section->submitted = workers - 1;  // the caller is worker zero
    for (unsigned w = 1; w < workers; ++w) {
      pool.submit([section] {
        section->drain();
        section->mark_finished();
      });
    }
    section->drain();
    // Help with queued work (possibly our own helper tasks, possibly a
    // nested section's) until all our helpers have finished; then a plain
    // wait is safe: the stragglers are *running*, not queued.
    std::unique_lock<std::mutex> lock(section->mutex);
    while (section->finished < section->submitted) {
      lock.unlock();
      if (!pool.run_one()) {
        lock.lock();
        section->done_cv.wait(lock, [&] {
          return section->finished >= section->submitted;
        });
        break;
      }
      lock.lock();
    }
  }

  account_suppressed(*section);
  if (section->error) std::rethrow_exception(section->error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ExecOptions& opts) {
  const std::size_t chunk = resolve_chunk_size(n, opts.chunk_size);
  parallel_for_chunks(
      n, chunk,
      [&](ChunkRange range) {
        for (std::size_t i = range.begin; i < range.end; ++i) body(i);
      },
      opts.threads, opts.cancel);
}

}  // namespace zc::exec
