#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for parallel sections.
///
/// A CancelToken is a latch: once stop is requested (explicitly or by an
/// armed wall-clock deadline expiring) it stays stopped. Parallel
/// sections consult the token at *chunk boundaries only* — a chunk that
/// has started always runs to completion, so the set of executed chunks
/// is always a prefix-closed subset of claims and every executed chunk's
/// result is complete and mergeable. Cancellation therefore never
/// produces torn accumulators, only missing ones.
///
/// request_stop() is async-signal-safe (a relaxed atomic store), so a
/// SIGINT handler may call it directly.

#include <atomic>
#include <chrono>

namespace zc::exec {

/// Sticky cooperative stop flag with an optional wall-clock deadline.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request a stop. Latching and idempotent; async-signal-safe.
  void request_stop() noexcept {
    stopped_.store(true, std::memory_order_relaxed);
  }

  /// Arm a deadline `budget` from now; stop_requested() latches true once
  /// the steady clock passes it. A non-positive budget stops immediately.
  void arm_deadline(std::chrono::steady_clock::duration budget) noexcept {
    deadline_ = std::chrono::steady_clock::now() + budget;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// True once a stop was requested or an armed deadline expired. Cheap
  /// enough to poll per chunk; once true it never reverts to false.
  [[nodiscard]] bool stop_requested() const noexcept {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() >= deadline_) {
      stopped_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> stopped_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace zc::exec
