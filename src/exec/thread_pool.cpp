#include "exec/thread_pool.hpp"

#include <utility>

namespace zc::exec {

unsigned hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  size_ = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // hardware-sized; constructed on first use
  return pool;
}

}  // namespace zc::exec
