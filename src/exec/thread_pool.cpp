#include "exec/thread_pool.hpp"

#include <utility>

namespace zc::exec {

unsigned hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  size_ = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    // Under the queue mutex, so a plain max; atomic only for lockless
    // stats() readers.
    if (queue_.size() > max_queue_depth_.load(std::memory_order_relaxed))
      max_queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  work_available_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  tasks_run_by_helpers_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_run_by_workers_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

PoolStats ThreadPool::stats() const noexcept {
  PoolStats out;
  out.threads = size_;
  out.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  out.tasks_run_by_workers =
      tasks_run_by_workers_.load(std::memory_order_relaxed);
  out.tasks_run_by_helpers =
      tasks_run_by_helpers_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::export_metrics(obs::MetricSet& set) const {
  const PoolStats s = stats();
  set.set_gauge(set.gauge("exec.pool.threads"),
                static_cast<double>(s.threads));
  set.max_gauge(set.gauge("exec.pool.queue.max_depth"),
                static_cast<double>(s.max_queue_depth));
  const std::uint64_t run = s.tasks_run_by_workers + s.tasks_run_by_helpers;
  if (run > 0)
    set.set_gauge(set.gauge("exec.pool.utilization.worker_share"),
                  static_cast<double>(s.tasks_run_by_workers) /
                      static_cast<double>(run));
  set.inc(set.counter("exec.pool.tasks.submitted"), s.tasks_submitted);
  set.inc(set.counter("exec.pool.tasks.run_by_workers"),
          s.tasks_run_by_workers);
  set.inc(set.counter("exec.pool.tasks.run_by_helpers"),
          s.tasks_run_by_helpers);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // hardware-sized; constructed on first use
  return pool;
}

}  // namespace zc::exec
