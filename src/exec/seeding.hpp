#pragma once

/// \file seeding.hpp
/// Counter-based RNG seed splitting for scheduling-independent parallel
/// Monte Carlo. Trial t of a campaign with master seed s gets
///
///   split_seed(s, t) = splitmix64( s ^ splitmix64(t) )
///
/// — a pure function of (s, t), so every trial's random stream is fixed
/// the moment the options are chosen, regardless of which thread runs the
/// trial or in what order. The inner splitmix64 decorrelates consecutive
/// counters before the xor so that campaigns with adjacent master seeds
/// do not share trial streams with the indices shifted.

#include <cstdint>

namespace zc::exec {

/// SplitMix64 output function (Steele, Lea & Flood): bijective 64-bit
/// mixer with full avalanche; the standard seed expander for xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Independent per-index seed derived from a master seed.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t seed,
                                                 std::uint64_t index) noexcept {
  return splitmix64(seed ^ splitmix64(index));
}

}  // namespace zc::exec
