#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool underpinning the deterministic parallel layer
/// (parallel.hpp). The pool itself is a plain FIFO task queue; all
/// determinism guarantees live one level up, in the static chunk
/// assignment of parallel_for / parallel_reduce.
///
/// Blocking-wait callers can *help*: run_one() lets a thread that is
/// waiting for its own tasks drain the queue instead of sleeping, which
/// both avoids idle cores and makes nested parallel sections
/// deadlock-free even on a pool of size 1.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace zc::exec {

/// Number of workers a `threads = 0` request resolves to: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency may report 0).
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Lifetime statistics of one pool, maintained with relaxed atomics so
/// reading them never perturbs scheduling. Scheduling-dependent by
/// nature: these belong in a report's *runtime* section, never in the
/// deterministic semantic metrics.
struct PoolStats {
  unsigned threads = 0;
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_run_by_workers = 0;
  /// Tasks drained via run_one() by threads waiting on their own work.
  std::uint64_t tasks_run_by_helpers = 0;
  std::size_t max_queue_depth = 0;  ///< high-water mark of the FIFO
};

/// Fixed-size FIFO thread pool. Tasks are arbitrary void() callables;
/// exceptions must be handled inside the task (see parallel.cpp, which
/// funnels them through an exception_ptr).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware_threads()).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread; returns false if
  /// the queue was empty. Lets waiters help instead of blocking, which
  /// keeps nested parallel sections live even when every pool worker is
  /// itself inside a waiting parallel section.
  bool run_one();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return size_; }

  /// Snapshot of the pool's lifetime statistics.
  [[nodiscard]] PoolStats stats() const noexcept;

  /// Export the statistics as "exec.pool.*" gauges/counters (queue
  /// high-water mark, worker vs helper utilization split) into `set` —
  /// intended for a run report's runtime section.
  void export_metrics(obs::MetricSet& set) const;

  /// Process-wide pool sized to the hardware, created on first use.
  /// Shared by every parallel_for unless a caller brings its own pool.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned size_ = 0;
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_run_by_workers_{0};
  std::atomic<std::uint64_t> tasks_run_by_helpers_{0};
  std::atomic<std::size_t> max_queue_depth_{0};
};

}  // namespace zc::exec
