#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool underpinning the deterministic parallel layer
/// (parallel.hpp). The pool itself is a plain FIFO task queue; all
/// determinism guarantees live one level up, in the static chunk
/// assignment of parallel_for / parallel_reduce.
///
/// Blocking-wait callers can *help*: run_one() lets a thread that is
/// waiting for its own tasks drain the queue instead of sleeping, which
/// both avoids idle cores and makes nested parallel sections
/// deadlock-free even on a pool of size 1.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zc::exec {

/// Number of workers a `threads = 0` request resolves to: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency may report 0).
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Fixed-size FIFO thread pool. Tasks are arbitrary void() callables;
/// exceptions must be handled inside the task (see parallel.cpp, which
/// funnels them through an exception_ptr).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware_threads()).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread; returns false if
  /// the queue was empty. Lets waiters help instead of blocking, which
  /// keeps nested parallel sections live even when every pool worker is
  /// itself inside a waiting parallel section.
  bool run_one();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return size_; }

  /// Process-wide pool sized to the hardware, created on first use.
  /// Shared by every parallel_for unless a caller brings its own pool.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned size_ = 0;
  bool shutting_down_ = false;
};

}  // namespace zc::exec
