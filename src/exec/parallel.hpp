#pragma once

/// \file parallel.hpp
/// Deterministic data-parallel primitives: parallel_for / parallel_reduce
/// over an index range with *static chunk assignment*.
///
/// The range [0, n) is split into contiguous chunks whose boundaries
/// depend only on `n` and the (explicit or default) chunk size — never on
/// the number of threads or on scheduling. Worker threads race only for
/// *which chunk to run next*; each chunk's work and each chunk's
/// accumulator are private to the chunk. parallel_reduce then merges the
/// per-chunk accumulators **in chunk-index order** on the calling thread.
/// Consequence: results are bitwise-identical at any thread count,
/// including threads = 1 (which runs inline without touching the pool).
///
/// Waiting callers help drain the shared pool's queue (ThreadPool::
/// run_one), so nested parallel sections cannot deadlock.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"

namespace zc::exec {

/// Knobs of a parallel section.
struct ExecOptions {
  /// Worker count: 0 = hardware concurrency, 1 = run inline (serial).
  /// Results never depend on this value — only wall-clock time does.
  unsigned threads = 0;

  /// Elements per chunk; 0 = ceil(n / 64) (one chunk per element for
  /// n < 64). Chunk boundaries are what merge order is defined over, so
  /// overriding this *does* change floating-point merge results — pick a
  /// value and keep it fixed when comparing runs.
  std::size_t chunk_size = 0;

  /// Optional cooperative stop: checked before each chunk is claimed.
  /// Chunks already running finish normally; remaining chunks are never
  /// started. Not owned — must outlive the parallel call. nullptr = never
  /// cancelled.
  const CancelToken* cancel = nullptr;
};

/// One statically-assigned chunk of the index range.
struct ChunkRange {
  std::size_t begin = 0;  ///< first index, inclusive
  std::size_t end = 0;    ///< last index, exclusive
  std::size_t index = 0;  ///< chunk ordinal in [0, chunk_count)
};

/// Resolved elements-per-chunk for a range of `n` (default: 64 chunks).
[[nodiscard]] std::size_t resolve_chunk_size(std::size_t n,
                                             std::size_t requested) noexcept;

/// Number of chunks the range [0, n) splits into at the given chunk size.
[[nodiscard]] std::size_t chunk_count(std::size_t n,
                                      std::size_t chunk_size) noexcept;

/// Run `body` once per chunk, distributing chunks over `threads` workers
/// of the shared pool (the caller participates). Exceptions thrown by any
/// chunk are rethrown on the calling thread (first one wins; later ones
/// are counted — see suppressed_error_count()). When `cancel` is non-null
/// and requests a stop, no further chunks are claimed; chunks already
/// running complete normally.
void parallel_for_chunks(std::size_t n, std::size_t chunk_size,
                         const std::function<void(ChunkRange)>& body,
                         unsigned threads,
                         const CancelToken* cancel = nullptr);

/// Process-lifetime count of chunk exceptions that were *suppressed*
/// because an earlier exception from the same parallel section had
/// already been parked for rethrow. Each completed section adds its
/// suppressed tally here and publishes the cumulative value as the
/// `exec.errors.suppressed` gauge in obs::Registry::global(), so
/// containment reporting stays truthful even though only one exception
/// can propagate per section.
[[nodiscard]] std::uint64_t suppressed_error_count() noexcept;

/// Run `body(i)` for every i in [0, n) exactly once (or, if
/// `opts.cancel` requests a stop, for a chunk-aligned subset — callers
/// that pass a token must tolerate unvisited indices).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ExecOptions& opts = {});

/// Chunked reduction: one `Acc` per chunk (copy-constructed from `init`),
/// `body(acc, i)` folds element i into its chunk's accumulator, and
/// `merge(into, from)` combines accumulators in ascending chunk order.
/// Deterministic at any thread count (see file comment).
template <typename Acc, typename Body, typename Merge>
[[nodiscard]] Acc parallel_reduce(std::size_t n, Acc init, Body&& body,
                                  Merge&& merge, const ExecOptions& opts = {}) {
  const std::size_t chunk = resolve_chunk_size(n, opts.chunk_size);
  const std::size_t chunks = chunk_count(n, chunk);
  std::vector<Acc> accumulators(chunks, init);
  parallel_for_chunks(
      n, chunk,
      [&](ChunkRange range) {
        Acc& acc = accumulators[range.index];
        for (std::size_t i = range.begin; i < range.end; ++i) body(acc, i);
      },
      opts.threads, opts.cancel);
  Acc out = init;
  for (Acc& acc : accumulators) merge(out, acc);
  return out;
}

/// Offset reduction for round-laddered work (adaptive Monte-Carlo): fold
/// the *global* indices [begin, begin + n), chunked and merged exactly
/// like parallel_reduce over a local range of length n. Counter-based
/// seeding stays a pure function of the global index, so a ladder's
/// round boundaries never leak into per-element results.
///
/// Round-aware cancellation: the token is re-checked here, before any
/// chunk of the round is dispatched — a stop requested between rounds
/// returns `init` untouched instead of claiming (and then discarding)
/// the round's first chunks. Within the round the usual per-chunk checks
/// of parallel_for_chunks apply.
template <typename Acc, typename Body, typename Merge>
[[nodiscard]] Acc parallel_reduce_offset(std::size_t begin, std::size_t n,
                                         Acc init, Body&& body, Merge&& merge,
                                         const ExecOptions& opts = {}) {
  if (opts.cancel != nullptr && opts.cancel->stop_requested()) return init;
  return parallel_reduce(
      n, std::move(init),
      [&](Acc& acc, std::size_t i) { body(acc, begin + i); },
      std::forward<Merge>(merge), opts);
}

}  // namespace zc::exec
