#include "faults/schedule.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::faults {

const char* to_string(DeliveryCause cause) noexcept {
  switch (cause) {
    case DeliveryCause::delivered: return "delivered";
    case DeliveryCause::reordered: return "reordered";
    case DeliveryCause::duplicate: return "duplicate";
    case DeliveryCause::random_loss: return "loss";
    case DeliveryCause::burst_loss: return "burst-loss";
    case DeliveryCause::blackout: return "blackout";
    case DeliveryCause::target_deaf: return "target-deaf";
  }
  return "?";
}

bool TimeWindows::contains(double t) const noexcept {
  if (duration <= 0.0 || t < start) return false;
  if (period <= 0.0) return t < start + duration;
  const double phase = std::fmod(t - start, period);
  return phase < duration;
}

namespace {

void require_probability(double p, const char* field) {
  ZC_REQUIRE(std::isfinite(p) && 0.0 <= p && p <= 1.0,
             std::string(field) + " must be a probability in [0, 1]");
}

void require_windows(const TimeWindows& w, const char* owner) {
  const std::string prefix(owner);
  ZC_REQUIRE(std::isfinite(w.start) && w.start >= 0.0,
             prefix + ".windows.start must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(w.duration) && w.duration >= 0.0,
             prefix + ".windows.duration must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(w.period) && w.period >= 0.0,
             prefix + ".windows.period must be finite and >= 0");
  ZC_REQUIRE(w.period == 0.0 || w.period >= w.duration,
             prefix + ".windows.period must be 0 (one-shot) or >= duration");
}

}  // namespace

void FaultSchedule::validate() const {
  require_probability(gilbert_elliott.p_enter_burst,
                      "GilbertElliott.p_enter_burst");
  require_probability(gilbert_elliott.p_exit_burst,
                      "GilbertElliott.p_exit_burst");
  require_probability(gilbert_elliott.loss_good, "GilbertElliott.loss_good");
  require_probability(gilbert_elliott.loss_bad, "GilbertElliott.loss_bad");

  require_windows(blackout.windows, "Blackout");
  require_windows(delay_spike.windows, "DelaySpike");
  ZC_REQUIRE(std::isfinite(delay_spike.multiplier) &&
                 delay_spike.multiplier >= 1.0,
             "DelaySpike.multiplier must be finite and >= 1");
  ZC_REQUIRE(std::isfinite(delay_spike.extra) && delay_spike.extra >= 0.0,
             "DelaySpike.extra must be finite and >= 0");

  require_probability(duplication.probability, "Duplication.probability");
  if (duplication.enabled()) {
    ZC_REQUIRE(2 <= duplication.copies &&
                   duplication.copies <= FaultDecision::kMaxCopies,
               "Duplication.copies must be in [2, FaultDecision::kMaxCopies]");
  }

  require_probability(reordering.probability, "Reordering.probability");
  ZC_REQUIRE(std::isfinite(reordering.max_jitter) &&
                 reordering.max_jitter >= 0.0,
             "Reordering.max_jitter must be finite and >= 0");
  if (reordering.enabled()) {
    ZC_REQUIRE(reordering.max_jitter > 0.0,
               "Reordering.max_jitter must be > 0 when reordering is on");
  }

  require_probability(host_churn.deaf_fraction, "HostChurn.deaf_fraction");
  ZC_REQUIRE(std::isfinite(host_churn.period) && host_churn.period >= 0.0,
             "HostChurn.period must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(host_churn.deaf_duration) &&
                 host_churn.deaf_duration >= 0.0,
             "HostChurn.deaf_duration must be finite and >= 0");
  if (host_churn.enabled() && host_churn.period > 0.0) {
    ZC_REQUIRE(host_churn.deaf_duration <= host_churn.period,
               "HostChurn.deaf_duration must be <= period");
  }
}

std::string FaultSchedule::summary() const {
  std::string out;
  const auto append = [&out](const char* label) {
    if (!out.empty()) out += '+';
    out += label;
  };
  if (gilbert_elliott.enabled()) append("gilbert-elliott");
  if (blackout.enabled()) append("blackout");
  if (delay_spike.enabled()) append("delay-spike");
  if (duplication.enabled()) append("duplication");
  if (reordering.enabled()) append("reordering");
  if (host_churn.enabled()) append("host-churn");
  return out.empty() ? "none" : out;
}

}  // namespace zc::faults
