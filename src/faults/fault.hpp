#pragma once

/// \file fault.hpp
/// The fault-model seam between the broadcast medium and the
/// fault-injection subsystem. `sim::Medium` consults an installed
/// `FaultModel` once per (packet, receiver) delivery decision; the model
/// answers with a `FaultDecision` — drop (and why), duplicate, or adjust
/// the transit delay. The concrete composable implementation lives in
/// `faults::FaultInjector`; keeping the interface here (depending only on
/// the header-only packet types) avoids a sim <-> faults cycle.

#include <cstdint>

#include "sim/packet.hpp"

namespace zc::faults {

/// Why a (packet, receiver) delivery ended the way it did. Extends the
/// medium's former boolean `lost` so traces stay auditable under injected
/// faults: every drop names its mechanism, and delivered packets that were
/// jittered or duplicated are distinguishable from clean deliveries.
enum class DeliveryCause : std::uint8_t {
  delivered,    ///< clean delivery, no fault involved
  reordered,    ///< delivered, but with injected reordering jitter
  duplicate,    ///< delivered extra copy injected by duplication
  random_loss,  ///< the medium's i.i.d. per-delivery loss
  burst_loss,   ///< lost in a Gilbert-Elliott burst (bad state)
  blackout,     ///< dropped inside a link blackout / flap window
  target_deaf,  ///< receiving host churned out (deaf window)
};

/// Number of DeliveryCause enumerators (for per-cause counter arrays).
inline constexpr std::size_t kDeliveryCauseCount = 7;

/// True for the causes that mean the packet never arrived.
[[nodiscard]] constexpr bool is_drop(DeliveryCause cause) noexcept {
  return cause == DeliveryCause::random_loss ||
         cause == DeliveryCause::burst_loss ||
         cause == DeliveryCause::blackout ||
         cause == DeliveryCause::target_deaf;
}

/// Short lowercase label, e.g. "burst-loss".
[[nodiscard]] const char* to_string(DeliveryCause cause) noexcept;

/// One delivery decision as seen by the fault model.
struct FaultContext {
  double now = 0.0;  ///< virtual send time
  sim::HostId sender = 0;
  sim::HostId target = 0;
};

/// The fault model's verdict for one delivery.
struct FaultDecision {
  /// Upper bound on injected duplication (primary + extra copies).
  static constexpr unsigned kMaxCopies = 4;

  bool drop = false;                ///< drop every copy
  DeliveryCause cause = DeliveryCause::delivered;  ///< drop reason
  unsigned copies = 1;              ///< deliveries to schedule (>= 1)
  double delay_multiplier = 1.0;    ///< scales the base transit delay
  double extra_delay[kMaxCopies] = {0.0, 0.0, 0.0, 0.0};  ///< per copy
  bool reordered = false;           ///< jitter was injected into copy 0
};

/// Interface the medium consults; implemented by faults::FaultInjector.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Decide the fate of one (packet, receiver) delivery at virtual time
  /// `ctx.now`. Called in deterministic simulation order; implementations
  /// draw randomness only from their own seeded stream.
  [[nodiscard]] virtual FaultDecision on_delivery(const FaultContext& ctx) = 0;

 protected:
  FaultModel() = default;
  FaultModel(const FaultModel&) = default;
  FaultModel& operator=(const FaultModel&) = default;
};

}  // namespace zc::faults
