#pragma once

/// \file schedule.hpp
/// Declarative, value-semantic descriptions of adversarial network
/// conditions. A `FaultSchedule` is carried by `sim::NetworkConfig`; each
/// Monte-Carlo trial instantiates a fresh `FaultInjector` from it with a
/// per-trial seed (exec::split_seed), so campaigns stay bitwise-
/// reproducible at any thread count.
///
/// The schedules deliberately violate the paper's i.i.d.-reply assumption
/// (Eq. 1 telescopes only because every probe sees the same defective
/// F_X): bursty correlated loss, time-windowed outages, delay spikes,
/// duplication, bounded reordering and host churn are exactly the regimes
/// where the recommended (n, r) optimum may stop being optimal.

#include <string>

#include "faults/fault.hpp"

namespace zc::faults {

/// Periodic (or one-shot) activity windows on the virtual-time axis:
/// active during [start + k*period, start + k*period + duration) for
/// k = 0, 1, ... — `period == 0` means a single window.
struct TimeWindows {
  double start = 0.0;
  double duration = 0.0;  ///< 0 = disabled
  double period = 0.0;    ///< 0 = one-shot; else repeat every `period`

  [[nodiscard]] bool enabled() const noexcept { return duration > 0.0; }

  /// Is `t` inside an active window?
  [[nodiscard]] bool contains(double t) const noexcept;

  /// Fraction of the time axis covered (1 for a one-shot window of
  /// infinite tail handling: one-shot windows report duration / +inf = 0;
  /// meaningful for periodic windows only).
  [[nodiscard]] double duty_cycle() const noexcept {
    return period > 0.0 ? duration / period : 0.0;
  }
};

/// Two-state bursty loss channel (Gilbert-Elliott), stepped once per
/// delivery decision: in the good state a delivery is lost with
/// `loss_good`, in the bad (burst) state with `loss_bad`; the state
/// transitions good->bad with `p_enter_burst` and bad->good with
/// `p_exit_burst` per delivery.
struct GilbertElliott {
  double p_enter_burst = 0.0;  ///< P(good -> bad) per delivery; 0 = off
  double p_exit_burst = 1.0;   ///< P(bad -> good) per delivery
  double loss_good = 0.0;      ///< per-delivery loss in the good state
  double loss_bad = 1.0;       ///< per-delivery loss in a burst

  [[nodiscard]] bool enabled() const noexcept { return p_enter_burst > 0.0; }

  /// Stationary probability of the bad state,
  /// p_enter / (p_enter + p_exit).
  [[nodiscard]] double stationary_bad() const noexcept {
    return p_enter_burst / (p_enter_burst + p_exit_burst);
  }

  /// Long-run per-delivery loss probability under stationarity.
  [[nodiscard]] double long_run_loss() const noexcept {
    const double bad = stationary_bad();
    return (1.0 - bad) * loss_good + bad * loss_bad;
  }
};

/// Total link outage during the given windows: nothing traverses the
/// medium. A periodic window is a link flap.
struct Blackout {
  TimeWindows windows;
  [[nodiscard]] bool enabled() const noexcept { return windows.enabled(); }
};

/// Transit-delay inflation during the given windows: each delivery's
/// base transit delay is scaled by `multiplier` and `extra` seconds are
/// added. With a zero-delay medium, `extra` alone models the spike.
struct DelaySpike {
  TimeWindows windows;
  double multiplier = 1.0;  ///< scales the sampled base transit delay
  double extra = 0.0;       ///< additive transit delay, seconds
  [[nodiscard]] bool enabled() const noexcept { return windows.enabled(); }
};

/// Random packet duplication: with `probability`, a delivery is scheduled
/// `copies` times (each copy samples its own transit delay).
struct Duplication {
  double probability = 0.0;  ///< 0 = off
  unsigned copies = 2;       ///< total copies, 2..FaultDecision::kMaxCopies
  [[nodiscard]] bool enabled() const noexcept { return probability > 0.0; }
};

/// Bounded reordering: with `probability`, a delivery is held back by an
/// extra Uniform[0, max_jitter] transit delay, letting later sends
/// overtake it (the medium delivers strictly in adjusted-time order, so
/// the jitter bound caps how far a packet can fall behind).
struct Reordering {
  double probability = 0.0;  ///< 0 = off
  double max_jitter = 0.0;   ///< upper bound on the injected delay
  [[nodiscard]] bool enabled() const noexcept { return probability > 0.0; }
};

/// Host churn / deafness: a deterministic per-host subset of interfaces
/// (`deaf_fraction` of them, selected by a seeded hash) is deaf — drops
/// every incoming delivery — during per-host phase-shifted windows of
/// `deaf_duration` every `period` seconds. `period == 0` makes the
/// affected hosts permanently deaf (host loss / crash).
struct HostChurn {
  double deaf_fraction = 0.0;  ///< fraction of hosts affected; 0 = off
  double period = 0.0;         ///< churn cycle; 0 = permanently deaf
  double deaf_duration = 0.0;  ///< deaf span per cycle (ignored if period=0)
  [[nodiscard]] bool enabled() const noexcept { return deaf_fraction > 0.0; }
};

/// A composable bundle of adversarial conditions; all default-disabled.
struct FaultSchedule {
  GilbertElliott gilbert_elliott;
  Blackout blackout;
  DelaySpike delay_spike;
  Duplication duplication;
  Reordering reordering;
  HostChurn host_churn;

  /// Any fault active? (A schedule with none is free: the medium skips
  /// the fault hook entirely.)
  [[nodiscard]] bool any() const noexcept {
    return gilbert_elliott.enabled() || blackout.enabled() ||
           delay_spike.enabled() || duplication.enabled() ||
           reordering.enabled() || host_churn.enabled();
  }

  /// Fail fast (ZC_REQUIRE, naming the offending field) on out-of-range
  /// parameters instead of producing silently-wrong simulations.
  void validate() const;

  /// Compact summary of the enabled faults, e.g.
  /// "gilbert-elliott+blackout" ("none" when empty).
  [[nodiscard]] std::string summary() const;
};

}  // namespace zc::faults
