#include "faults/injector.hpp"

#include <algorithm>

#include "exec/seeding.hpp"

namespace zc::faults {

namespace {

/// Uniform [0, 1) from a 64-bit hash (53 mantissa bits).
double u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(schedule),
      rng_(seed),
      churn_seed_(exec::split_seed(seed, kFaultSeedStream)) {
  schedule_.validate();
}

void FaultInjector::reseed(std::uint64_t seed) {
  rng_ = prob::Rng(seed);
  churn_seed_ = exec::split_seed(seed, kFaultSeedStream);
  burst_ = false;
}

bool FaultInjector::host_deaf_at(sim::HostId host, double t) const noexcept {
  const HostChurn& churn = schedule_.host_churn;
  if (!churn.enabled()) return false;
  // Affected-subset membership and window phase are pure functions of
  // (churn_seed_, host): trial-reproducible, host-decorrelated.
  const std::uint64_t h1 = exec::split_seed(churn_seed_, host);
  if (u01(h1) >= churn.deaf_fraction) return false;
  if (churn.period <= 0.0) return true;  // permanently deaf
  const double phase = u01(exec::splitmix64(h1)) * churn.period;
  TimeWindows windows;
  windows.start = phase;
  windows.duration = churn.deaf_duration;
  windows.period = churn.period;
  return windows.contains(t);
}

void FaultInjector::bind_metrics(obs::MetricSet* set) {
  metrics_ = set;
  if (metrics_ == nullptr) return;
  blackout_id_ = metrics_->counter("faults.drop.blackout");
  deaf_id_ = metrics_->counter("faults.drop.target-deaf");
  burst_drop_id_ = metrics_->counter("faults.drop.burst-loss");
  burst_enter_id_ = metrics_->counter("faults.burst.entered");
  duplicate_id_ = metrics_->counter("faults.injected.duplicates");
  spike_id_ = metrics_->counter("faults.injected.delay_spikes");
  jitter_id_ = metrics_->counter("faults.injected.jitter");
}

FaultDecision FaultInjector::on_delivery(const FaultContext& ctx) {
  FaultDecision out;
  const auto count = [this](obs::MetricId id, std::uint64_t delta = 1) {
    ZC_OBS_ONLY(if (metrics_ != nullptr) metrics_->inc(id, delta));
  };

  // Link-level outage dominates everything else: nothing traverses.
  if (schedule_.blackout.enabled() &&
      schedule_.blackout.windows.contains(ctx.now)) {
    out.drop = true;
    out.cause = DeliveryCause::blackout;
    count(blackout_id_);
    return out;
  }

  if (host_deaf_at(ctx.target, ctx.now)) {
    out.drop = true;
    out.cause = DeliveryCause::target_deaf;
    count(deaf_id_);
    return out;
  }

  const GilbertElliott& ge = schedule_.gilbert_elliott;
  if (ge.enabled()) {
    // Step the two-state chain once per delivery, then apply the loss
    // probability of the state the delivery sees.
    if (burst_) {
      if (rng_.bernoulli(ge.p_exit_burst)) burst_ = false;
    } else {
      if (rng_.bernoulli(ge.p_enter_burst)) {
        burst_ = true;
        count(burst_enter_id_);
      }
    }
    const double loss = burst_ ? ge.loss_bad : ge.loss_good;
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      out.drop = true;
      out.cause = DeliveryCause::burst_loss;
      count(burst_drop_id_);
      return out;
    }
  }

  if (schedule_.duplication.enabled() &&
      rng_.bernoulli(schedule_.duplication.probability)) {
    out.copies = std::min(schedule_.duplication.copies,
                          FaultDecision::kMaxCopies);
    count(duplicate_id_, out.copies - 1);
  }

  double window_extra = 0.0;
  const DelaySpike& spike = schedule_.delay_spike;
  if (spike.enabled() && spike.windows.contains(ctx.now)) {
    out.delay_multiplier = spike.multiplier;
    window_extra = spike.extra;
    count(spike_id_);
  }

  const Reordering& reorder = schedule_.reordering;
  for (unsigned copy = 0; copy < out.copies; ++copy) {
    double extra = window_extra;
    if (reorder.enabled() && rng_.bernoulli(reorder.probability)) {
      extra += rng_.uniform(0.0, reorder.max_jitter);
      if (copy == 0) out.reordered = true;
      count(jitter_id_);
    }
    out.extra_delay[copy] = extra;
  }
  return out;
}

}  // namespace zc::faults
