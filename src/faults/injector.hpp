#pragma once

/// \file injector.hpp
/// Runtime fault injection: turns a declarative `FaultSchedule` into
/// per-delivery `FaultDecision`s. One injector serves one simulation run;
/// it owns its RNG (seeded by the caller, typically with
/// exec::split_seed(trial_seed, kFaultSeedStream)) so fault randomness
/// never perturbs the main simulation stream — enabling a fault leaves
/// the fault-free draws of the same trial untouched.

#include <cstdint>

#include "faults/schedule.hpp"
#include "obs/metrics.hpp"
#include "prob/rng.hpp"

namespace zc::faults {

/// Sub-stream index reserved for fault randomness when splitting a trial
/// seed (any fixed constant works; named so all call sites agree).
inline constexpr std::uint64_t kFaultSeedStream = 0xFA017EED2026ULL;

/// Deterministic composable fault model; install into a sim::Medium.
class FaultInjector final : public FaultModel {
 public:
  /// Validates `schedule` (ZC_REQUIRE) and seeds the private stream.
  FaultInjector(FaultSchedule schedule, std::uint64_t seed);

  /// Rewind to the freshly-constructed state for `seed`: reseeds the
  /// private stream, re-derives the churn key, and leaves the
  /// Gilbert-Elliott chain in the good state. Part of the trial-context
  /// reuse path (Network::reset); the schedule and metric binding persist.
  void reseed(std::uint64_t seed);

  [[nodiscard]] FaultDecision on_delivery(const FaultContext& ctx) override;

  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// Is the Gilbert-Elliott channel currently in the burst state?
  [[nodiscard]] bool in_burst() const noexcept { return burst_; }

  /// Is `host` deaf at virtual time `t` under the churn schedule?
  /// Deterministic pure function of (seed, host, t).
  [[nodiscard]] bool host_deaf_at(sim::HostId host, double t) const noexcept;

  /// Export injector-decision counters ("faults.drop.<cause>" for the
  /// drops it causes, "faults.injected.*" for shaping events, and
  /// "faults.burst.entered" for Gilbert-Elliott good->bad transitions)
  /// into `set`. Ids are resolved once here; per-decision cost is an
  /// indexed add. Non-owning; pass nullptr to stop counting.
  void bind_metrics(obs::MetricSet* set);

 private:
  FaultSchedule schedule_;
  prob::Rng rng_;
  std::uint64_t churn_seed_;
  bool burst_ = false;

  obs::MetricSet* metrics_ = nullptr;
  obs::MetricId blackout_id_ = 0;
  obs::MetricId deaf_id_ = 0;
  obs::MetricId burst_drop_id_ = 0;
  obs::MetricId burst_enter_id_ = 0;
  obs::MetricId duplicate_id_ = 0;
  obs::MetricId spike_id_ = 0;
  obs::MetricId jitter_id_ = 0;
};

}  // namespace zc::faults
