#pragma once

/// \file args.hpp
/// Minimal command-line option parser for the example/tool binaries:
/// long options only (`--name value`, `--switch`), typed accessors with
/// defaults, generated help text, and error reporting instead of exits
/// (so it is unit-testable).

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace zc {

/// Declarative option parser.
class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description);

  /// A boolean switch: present => true.
  void add_flag(const std::string& name, const std::string& help);

  /// A valued option with a default (shown in help).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv (excluding argv[0]). Returns false and records error()
  /// on unknown options (suggesting the nearest known option within
  /// edit distance 2), duplicated options, or missing values. `--help`
  /// sets help_requested.
  [[nodiscard]] bool parse(const std::vector<std::string>& args);
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept {
    return help_requested_;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// True iff the flag was given.
  [[nodiscard]] bool flag(const std::string& name) const;

  /// The option's value (given or default).
  [[nodiscard]] std::string text(const std::string& name) const;

  /// The option parsed as a *finite* double; records no error — throws
  /// ContractViolation if the option does not exist, returns nullopt if
  /// unparsable or non-finite ("inf"/"nan" are valid strtod input but
  /// never valid model parameters).
  [[nodiscard]] std::optional<double> number(const std::string& name) const;

  /// Range-checked variant: additionally returns nullopt when the parsed
  /// value falls outside [min, max]. The inclusive bounds make the common
  /// cases (probabilities in [0, 1], positive costs via min = 0) one-liners
  /// for the CLIs.
  [[nodiscard]] std::optional<double> number(const std::string& name,
                                             double min, double max) const;

  /// True iff the user explicitly supplied the option (vs default).
  [[nodiscard]] bool given(const std::string& name) const;

  /// Usage text listing all options with defaults.
  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Option>> options_;  // declaration order
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_set_;
  bool help_requested_ = false;
  std::string error_;

  [[nodiscard]] const Option* find(const std::string& name) const;
  /// Closest registered option name (or "help") within edit distance 2
  /// of `name`; empty when nothing is that close.
  [[nodiscard]] std::string nearest(const std::string& name) const;
};

}  // namespace zc
