#pragma once

/// \file contract.hpp
/// Lightweight precondition / postcondition / invariant checking in the
/// style of the C++ Core Guidelines' `Expects` / `Ensures` (I.6, I.8).
///
/// Violations throw `zc::ContractViolation` so that tests can assert on
/// them; they are programming errors, not recoverable conditions, and
/// production callers are expected never to trigger them.

#include <stdexcept>
#include <string>

namespace zc {

/// Thrown when a contract (precondition, postcondition or invariant) fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         file + ":" + std::to_string(line)) {}

  /// Pre-formatted message (ZC_REQUIRE's named-field diagnostics).
  explicit ContractViolation(std::string what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}

[[noreturn]] inline void requirement_fail(const char* expr,
                                          const std::string& message,
                                          const char* file, int line) {
  throw ContractViolation(
      std::string("requirement failed: ") + message + " (" + expr + ") at " +
      file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace zc

/// Precondition check: argument/state requirements at function entry.
#define ZC_EXPECTS(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("precondition", #cond, __FILE__,         \
                                  __LINE__);                               \
  } while (false)

/// Postcondition check: guarantees at function exit.
#define ZC_ENSURES(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                  __LINE__);                               \
  } while (false)

/// Internal invariant check.
#define ZC_ASSERT(cond)                                                    \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)

/// Validation of user-supplied configuration with a human-readable message
/// naming the offending field, e.g.
///   ZC_REQUIRE(0.0 <= loss && loss < 1.0,
///              "MediumConfig.loss must be in [0, 1)");
/// Fails fast (throws ContractViolation) instead of letting a bad value
/// propagate into silently-NaN estimates.
#define ZC_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::requirement_fail(#cond, (msg), __FILE__, __LINE__);    \
  } while (false)
