#pragma once

/// \file contract.hpp
/// Lightweight precondition / postcondition / invariant checking in the
/// style of the C++ Core Guidelines' `Expects` / `Ensures` (I.6, I.8).
///
/// Violations throw `zc::ContractViolation` so that tests can assert on
/// them; they are programming errors, not recoverable conditions, and
/// production callers are expected never to trigger them.

#include <stdexcept>
#include <string>

namespace zc {

/// Thrown when a contract (precondition, postcondition or invariant) fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         file + ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace zc

/// Precondition check: argument/state requirements at function entry.
#define ZC_EXPECTS(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("precondition", #cond, __FILE__,         \
                                  __LINE__);                               \
  } while (false)

/// Postcondition check: guarantees at function exit.
#define ZC_ENSURES(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                  __LINE__);                               \
  } while (false)

/// Internal invariant check.
#define ZC_ASSERT(cond)                                                    \
  do {                                                                     \
    if (!(cond))                                                           \
      ::zc::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
