#include "common/args.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  ZC_EXPECTS(find(name) == nullptr);
  options_.emplace_back(name, Option{help, "", true});
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  ZC_EXPECTS(find(name) == nullptr);
  options_.emplace_back(name, Option{help, default_value, false});
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& [n, opt] : options_)
    if (n == name) return &opt;
  return nullptr;
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      error_ = "unexpected argument '" + arg + "' (long options only)";
      return false;
    }
    const std::string name = arg.substr(2);
    const Option* opt = find(name);
    if (opt == nullptr) {
      error_ = "unknown option '--" + name + "'";
      return false;
    }
    if (opt->is_flag) {
      flags_set_[name] = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "option '--" + name + "' needs a value";
      return false;
    }
    values_[name] = args[++i];
  }
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool ArgParser::flag(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr && opt->is_flag);
  const auto it = flags_set_.find(name);
  return it != flags_set_.end() && it->second;
}

std::string ArgParser::text(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr && !opt->is_flag);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->default_value;
}

std::optional<double> ArgParser::number(const std::string& name) const {
  const std::string value = text(name);
  // std::from_chars for double is incomplete on some libstdc++; strtod is
  // fine here (no locale-sensitive input expected).
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return std::nullopt;
  // strtod happily parses "inf", "nan", and overflowing literals like
  // "1e999" (HUGE_VAL); none of them is a usable parameter value.
  if (!std::isfinite(parsed)) return std::nullopt;
  return parsed;
}

std::optional<double> ArgParser::number(const std::string& name, double min,
                                        double max) const {
  ZC_EXPECTS(min <= max);
  const std::optional<double> parsed = number(name);
  if (!parsed.has_value() || *parsed < min || *parsed > max)
    return std::nullopt;
  return parsed;
}

bool ArgParser::given(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr);
  if (opt->is_flag)
    return flags_set_.contains(name);
  return values_.contains(name);
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << pad_right(name, 14) << " " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << '\n';
  }
  os << "  --" << pad_right("help", 14) << " show this text\n";
  return os.str();
}

}  // namespace zc
