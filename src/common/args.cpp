#include "common/args.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  ZC_EXPECTS(find(name) == nullptr);
  options_.emplace_back(name, Option{help, "", true});
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  ZC_EXPECTS(find(name) == nullptr);
  options_.emplace_back(name, Option{help, default_value, false});
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& [n, opt] : options_)
    if (n == name) return &opt;
  return nullptr;
}

namespace {

/// Levenshtein distance, early-capped: anything beyond `cap` reports
/// cap + 1 (only distances <= 2 matter for suggestions).
std::size_t edit_distance(const std::string& a, const std::string& b,
                          std::size_t cap) {
  const std::size_t la = a.size(), lb = b.size();
  if (la > lb + cap || lb > la + cap) return cap + 1;
  std::vector<std::size_t> prev(lb + 1), curr(lb + 1);
  for (std::size_t j = 0; j <= lb; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= la; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
    }
    prev.swap(curr);
  }
  return prev[lb];
}

}  // namespace

std::string ArgParser::nearest(const std::string& name) const {
  constexpr std::size_t kMaxDistance = 2;
  std::string best;
  std::size_t best_distance = kMaxDistance + 1;
  const auto consider = [&](const std::string& candidate) {
    const std::size_t d = edit_distance(name, candidate, kMaxDistance);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  };
  for (const auto& [n, opt] : options_) consider(n);
  consider("help");
  return best;  // empty when nothing is within distance 2
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      error_ = "unexpected argument '" + arg + "' (long options only)";
      return false;
    }
    const std::string name = arg.substr(2);
    const Option* opt = find(name);
    if (opt == nullptr) {
      error_ = "unknown option '--" + name + "'";
      const std::string suggestion = nearest(name);
      if (!suggestion.empty())
        error_ += " (did you mean '--" + suggestion + "'?)";
      return false;
    }
    // Repeats are rejected rather than last-wins: a duplicated flag in a
    // long command line is nearly always a typo for a different option.
    if (opt->is_flag) {
      if (flags_set_.contains(name)) {
        error_ = "duplicate option '--" + name + "'";
        return false;
      }
      flags_set_[name] = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "option '--" + name + "' needs a value";
      return false;
    }
    if (values_.contains(name)) {
      error_ = "duplicate option '--" + name + "'";
      return false;
    }
    values_[name] = args[++i];
  }
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool ArgParser::flag(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr && opt->is_flag);
  const auto it = flags_set_.find(name);
  return it != flags_set_.end() && it->second;
}

std::string ArgParser::text(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr && !opt->is_flag);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->default_value;
}

std::optional<double> ArgParser::number(const std::string& name) const {
  const std::string value = text(name);
  // std::from_chars for double is incomplete on some libstdc++; strtod is
  // fine here (no locale-sensitive input expected).
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return std::nullopt;
  // strtod happily parses "inf", "nan", and overflowing literals like
  // "1e999" (HUGE_VAL); none of them is a usable parameter value.
  if (!std::isfinite(parsed)) return std::nullopt;
  return parsed;
}

std::optional<double> ArgParser::number(const std::string& name, double min,
                                        double max) const {
  ZC_EXPECTS(min <= max);
  const std::optional<double> parsed = number(name);
  if (!parsed.has_value() || *parsed < min || *parsed > max)
    return std::nullopt;
  return parsed;
}

bool ArgParser::given(const std::string& name) const {
  const Option* opt = find(name);
  ZC_EXPECTS(opt != nullptr);
  if (opt->is_flag)
    return flags_set_.contains(name);
  return values_.contains(name);
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << pad_right(name, 14) << " " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << '\n';
  }
  os << "  --" << pad_right("help", 14) << " show this text\n";
  return os.str();
}

}  // namespace zc
