#include "common/strings.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>

namespace zc {

std::string format_sig(double value, int digits) {
  // Exact zero (either sign) short-circuits: "-0" reads as a distinct
  // value to humans and diffing tools, and no rounding below can make
  // a zero non-zero.
  if (value == 0.0) return "0";
  std::ostringstream os;
  if (!std::isfinite(value)) {
    os << value;
    return os.str();
  }
  // Pick plain vs scientific from the decimal exponent of the value as
  // *rounded to `digits` significant digits*, not of the raw value:
  // 9.9999e-5 at 3 digits rounds to 1.00e-4, so it must format like
  // 1e-4 ("0.0001"), not flip to scientific while its printed magnitude
  // sits on the plain side of the cutoff.
  char rounded[40];
  std::snprintf(rounded, sizeof rounded, "%.*e", digits - 1, value);
  const char* exp_part = std::strchr(rounded, 'e');
  const int exp10 = exp_part != nullptr ? std::atoi(exp_part + 1) : 0;
  if (exp10 >= 6 || exp10 <= -5) {
    os << std::scientific << std::setprecision(digits - 1) << value;
  } else {
    os << std::setprecision(digits) << value;
  }
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace zc
