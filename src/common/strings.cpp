#include "common/strings.hpp"

#include <cmath>
#include <iomanip>

namespace zc {

std::string format_sig(double value, int digits) {
  std::ostringstream os;
  const double mag = std::fabs(value);
  if (value != 0.0 && (mag >= 1e6 || mag < 1e-4)) {
    os << std::scientific << std::setprecision(digits - 1) << value;
  } else {
    os << std::setprecision(digits) << value;
  }
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace zc
