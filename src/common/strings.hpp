#pragma once

/// \file strings.hpp
/// Small string-formatting helpers shared across modules.

#include <sstream>
#include <string>
#include <vector>

namespace zc {

/// Format a double with `digits` significant digits (scientific when the
/// magnitude warrants it), e.g. for table output.
[[nodiscard]] std::string format_sig(double value, int digits = 6);

/// Format a double in fixed notation with `decimals` decimal places.
[[nodiscard]] std::string format_fixed(double value, int decimals = 3);

/// Join the elements of `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Left-pad `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

}  // namespace zc
