#include "markov/phase_type.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::markov {

namespace {

linalg::Lu lu_of_i_minus(const linalg::Matrix& q) {
  auto lu = linalg::Lu::decompose(linalg::Matrix::identity(q.rows()) - q);
  ZC_EXPECTS(lu.has_value());  // (I-Q) regular <=> no closed transient class
  return *std::move(lu);
}

}  // namespace

DiscretePhaseType::DiscretePhaseType(linalg::Vector alpha, linalg::Matrix q)
    : alpha_(std::move(alpha)), q_(std::move(q)), lu_(lu_of_i_minus(q_)) {
  ZC_EXPECTS(q_.square());
  ZC_EXPECTS(alpha_.size() == q_.rows());
  constexpr double kTol = 1e-12;
  numerics::KahanSum alpha_sum;
  for (const double a : alpha_) {
    ZC_EXPECTS(a >= -kTol);
    alpha_sum.add(a);
  }
  ZC_EXPECTS(alpha_sum.value() <= 1.0 + 1e-9);

  exit_.assign(q_.rows(), 0.0);
  for (std::size_t i = 0; i < q_.rows(); ++i) {
    numerics::KahanSum row;
    for (std::size_t j = 0; j < q_.cols(); ++j) {
      ZC_EXPECTS(q_(i, j) >= -kTol);
      row.add(q_(i, j));
    }
    ZC_EXPECTS(row.value() <= 1.0 + 1e-9);
    exit_[i] = 1.0 - row.value();
  }
}

DiscretePhaseType DiscretePhaseType::absorption_time(const Dtmc& chain,
                                                     std::size_t from) {
  ZC_EXPECTS(from < chain.num_states());
  const auto transient = chain.non_absorbing_states();
  linalg::Matrix q(transient.size(), transient.size());
  for (std::size_t i = 0; i < transient.size(); ++i)
    for (std::size_t j = 0; j < transient.size(); ++j)
      q(i, j) = chain.probability(transient[i], transient[j]);
  linalg::Vector alpha(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i)
    if (transient[i] == from) alpha[i] = 1.0;
  // `from` absorbing => alpha all-zero => atom at K = 0, as it should be.
  return DiscretePhaseType(std::move(alpha), std::move(q));
}

double DiscretePhaseType::pmf(std::size_t k) const {
  if (k == 0) {
    numerics::KahanSum mass;
    for (const double a : alpha_) mass.add(a);
    return 1.0 - mass.value();
  }
  linalg::Vector row = alpha_;
  for (std::size_t step = 1; step < k; ++step)
    row = linalg::mul_left(row, q_);
  return linalg::dot(row, exit_);
}

double DiscretePhaseType::cdf(std::size_t k) const {
  numerics::KahanSum acc;
  acc.add(pmf(0));
  linalg::Vector row = alpha_;
  for (std::size_t step = 1; step <= k; ++step) {
    acc.add(linalg::dot(row, exit_));
    row = linalg::mul_left(row, q_);
  }
  return std::min(1.0, acc.value());
}

std::vector<double> DiscretePhaseType::pmf_prefix(std::size_t k_max) const {
  std::vector<double> out(k_max + 1);
  out[0] = pmf(0);
  linalg::Vector row = alpha_;
  for (std::size_t k = 1; k <= k_max; ++k) {
    out[k] = linalg::dot(row, exit_);
    row = linalg::mul_left(row, q_);
  }
  return out;
}

double DiscretePhaseType::mean() const {
  // E[K] = alpha N 1: solve (I - Q) x = 1, then dot with alpha.
  const linalg::Vector ones(q_.rows(), 1.0);
  return linalg::dot(alpha_, lu_.solve(ones));
}

double DiscretePhaseType::variance() const {
  const linalg::Vector ones(q_.rows(), 1.0);
  const linalg::Vector n_ones = lu_.solve(ones);        // N 1
  const linalg::Vector qn_ones = q_ * n_ones;           // Q N 1
  const linalg::Vector nqn_ones = lu_.solve(qn_ones);   // N Q N 1
  const double m1 = linalg::dot(alpha_, n_ones);
  const double factorial2 = 2.0 * linalg::dot(alpha_, nqn_ones);
  const double m2 = factorial2 + m1;
  return std::max(0.0, m2 - m1 * m1);
}

std::size_t DiscretePhaseType::quantile(double p) const {
  ZC_EXPECTS(0.0 <= p && p < 1.0);
  numerics::KahanSum acc;
  acc.add(pmf(0));
  if (acc.value() >= p && acc.value() > 0.0) return 0;
  linalg::Vector row = alpha_;
  for (std::size_t k = 1;; ++k) {
    acc.add(linalg::dot(row, exit_));
    if (acc.value() >= p && acc.value() > 0.0) return k;
    row = linalg::mul_left(row, q_);
    // cdf -> 1 geometrically; p < 1 guarantees termination.
  }
}

}  // namespace zc::markov
