#include "markov/stationary.hpp"

#include "common/contract.hpp"
#include "linalg/lu.hpp"
#include "linalg/norms.hpp"

namespace zc::markov {

std::optional<linalg::Vector> stationary_power(const Dtmc& chain,
                                               const StationaryOptions& opts) {
  const std::size_t n = chain.num_states();
  linalg::Vector pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < opts.max_iter; ++it) {
    linalg::Vector next = linalg::mul_left(pi, chain.transition_matrix());
    const double diff = linalg::max_abs_diff(next, pi);
    pi = std::move(next);
    if (diff <= opts.tol) return pi;
  }
  return std::nullopt;
}

linalg::Vector stationary_direct(const Dtmc& chain) {
  // Solve A^T x = b where A is (P - I) with its last column replaced by
  // ones (normalization), i.e. pi A = (0, ..., 0, 1).
  const std::size_t n = chain.num_states();
  linalg::Matrix at(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double a_ij = (j + 1 == n)
                              ? 1.0
                              : chain.probability(i, j) - (i == j ? 1.0 : 0.0);
      at(j, i) = a_ij;
    }
  }
  linalg::Vector rhs(n, 0.0);
  rhs[n - 1] = 1.0;
  return linalg::solve(at, rhs);
}

}  // namespace zc::markov
