#pragma once

/// \file phase_type.hpp
/// Discrete phase-type (DPH) distributions: the law of the absorption
/// time of a DTMC with one absorbing super-state. The zeroconf DRM's
/// step count (and, per-attempt, its probe count) is exactly DPH;
/// exposing the machinery makes absorption-*time* laws available next to
/// the absorption-*probability* analysis of absorbing.hpp.
///
///   P(K = k) = alpha Q^{k-1} (I - Q) 1,   k = 1, 2, ...
///   E[K]     = alpha N 1,                 N = (I - Q)^{-1}
///   E[K(K-1)] = 2 alpha N Q N 1

#include "linalg/lu.hpp"
#include "markov/dtmc.hpp"

namespace zc::markov {

/// A discrete phase-type distribution.
class DiscretePhaseType {
 public:
  /// \param alpha  initial distribution over the transient phases; may
  ///               sum to less than 1 (the deficit is an atom at K = 0,
  ///               i.e. immediate absorption).
  /// \param q      substochastic transient matrix: rows sum to <= 1 and
  ///               (I - Q) must be invertible.
  DiscretePhaseType(linalg::Vector alpha, linalg::Matrix q);

  /// Build from an absorbing DTMC started in state `from`: the law of
  /// the number of steps until absorption (in any absorbing state).
  [[nodiscard]] static DiscretePhaseType absorption_time(const Dtmc& chain,
                                                         std::size_t from);

  [[nodiscard]] std::size_t num_phases() const { return q_.rows(); }

  /// P(K = k); pmf(0) is the initial deficit 1 - sum(alpha).
  [[nodiscard]] double pmf(std::size_t k) const;

  /// P(K <= k).
  [[nodiscard]] double cdf(std::size_t k) const;

  /// pmf(0..k_max) in one forward sweep (O(k_max * phases^2)).
  [[nodiscard]] std::vector<double> pmf_prefix(std::size_t k_max) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  /// Smallest k with cdf(k) >= p; p in [0, 1).
  [[nodiscard]] std::size_t quantile(double p) const;

 private:
  linalg::Vector alpha_;
  linalg::Matrix q_;
  linalg::Vector exit_;  ///< (I - Q) 1, per-phase absorption probability
  linalg::Lu lu_;        ///< LU of (I - Q)
};

}  // namespace zc::markov
