#pragma once

/// \file absorbing.hpp
/// Absorbing-chain analysis (Kulkarni [3] / Kemeny-Snell): partition the
/// transition matrix into
///
///        | Q  R |
///    P = |      |
///        | 0  I |
///
/// and derive the fundamental matrix N = (I-Q)^{-1}, absorption
/// probabilities B = N R (the paper's Sec. 5 computation), expected visit
/// counts and expected steps to absorption.

#include "linalg/lu.hpp"
#include "markov/dtmc.hpp"

namespace zc::markov {

/// Analysis of one absorbing DTMC. Construction performs the LU
/// factorization of (I-Q); queries are then cheap solves/lookups.
class AbsorbingAnalysis {
 public:
  /// Preconditions: `chain` is an absorbing chain (every state reaches an
  /// absorbing state; checked structurally).
  explicit AbsorbingAnalysis(const Dtmc& chain);

  /// Transient (non-absorbing) state indices, ascending.
  [[nodiscard]] const std::vector<std::size_t>& transient_states() const {
    return transient_;
  }
  /// Absorbing state indices, ascending.
  [[nodiscard]] const std::vector<std::size_t>& absorbing_states() const {
    return absorbing_;
  }

  /// Fundamental matrix N = (I-Q)^{-1}; N(i,j) is the expected number of
  /// visits to transient state j starting from transient state i.
  /// Indices are positions within transient_states().
  [[nodiscard]] const linalg::Matrix& fundamental() const { return n_; }

  /// B = N R: B(i, k) = probability of ultimate absorption in
  /// absorbing_states()[k] starting from transient_states()[i].
  [[nodiscard]] const linalg::Matrix& absorption_matrix() const { return b_; }

  /// Absorption probability by *original* state indices.
  [[nodiscard]] double absorption_probability(std::size_t from,
                                              std::size_t into) const;

  /// Expected number of steps to absorption from each transient state.
  [[nodiscard]] linalg::Vector expected_steps() const;

  /// Expected number of visits to transient state `to` from `from`
  /// (original indices).
  [[nodiscard]] double expected_visits(std::size_t from, std::size_t to) const;

  /// Solve (I-Q) x = b for a caller-supplied right-hand side over the
  /// transient states (used by reward analysis).
  [[nodiscard]] linalg::Vector solve_transient(const linalg::Vector& b) const;

  /// Q, the transient-to-transient sub-matrix.
  [[nodiscard]] const linalg::Matrix& transient_matrix() const { return q_; }

  /// R, the transient-to-absorbing sub-matrix.
  [[nodiscard]] const linalg::Matrix& absorbing_jump_matrix() const {
    return r_;
  }

 private:
  [[nodiscard]] std::size_t transient_position(std::size_t original) const;
  [[nodiscard]] std::size_t absorbing_position(std::size_t original) const;

  std::vector<std::size_t> transient_;
  std::vector<std::size_t> absorbing_;
  linalg::Matrix q_;
  linalg::Matrix r_;
  linalg::Lu lu_;       ///< LU of (I - Q)
  linalg::Matrix n_;    ///< fundamental matrix
  linalg::Matrix b_;    ///< absorption probabilities
};

}  // namespace zc::markov
