#pragma once

/// \file transient.hpp
/// Transient (finite-horizon) analysis of DTMCs: k-step state
/// distributions and cumulative absorption over time. Used to cross-check
/// the closed-form absorption probabilities (Sec. 5 expresses them as the
/// series  s (P')^{k-1} e  — we actually sum that series here).

#include "linalg/matrix.hpp"
#include "markov/dtmc.hpp"

namespace zc::markov {

/// Distribution after exactly `steps` steps from initial distribution
/// `initial` (size = num_states, sums to 1).
[[nodiscard]] linalg::Vector distribution_after(const Dtmc& chain,
                                                const linalg::Vector& initial,
                                                std::size_t steps);

/// P(chain started in `from` is in state `to` after exactly `steps` steps).
[[nodiscard]] double k_step_probability(const Dtmc& chain, std::size_t from,
                                        std::size_t to, std::size_t steps);

/// Cumulative probability of having been absorbed in state `into` within
/// `horizon` steps, starting from `from`. Converges to the closed-form
/// absorption probability as horizon grows.
[[nodiscard]] double absorbed_within(const Dtmc& chain, std::size_t from,
                                     std::size_t into, std::size_t horizon);

/// Partial sum of the paper's Sec. 5 series: sum_{k=1}^{horizon}
/// s (P')^{k-1} v, where s selects `from` among the transient states and v
/// is the one-step absorption column into `into`. Identical in the limit
/// to absorbed_within; exposed separately to test the series formulation.
[[nodiscard]] double absorption_series(const Dtmc& chain, std::size_t from,
                                       std::size_t into, std::size_t horizon);

}  // namespace zc::markov
