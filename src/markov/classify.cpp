#include "markov/classify.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace zc::markov {

namespace {

/// Iterative Tarjan SCC over the positive-probability adjacency of `p`.
struct Tarjan {
  const linalg::Matrix& p;
  std::size_t n;
  std::vector<std::size_t> index, lowlink;
  std::vector<bool> on_stack, visited;
  std::vector<std::size_t> stack;
  std::vector<std::size_t> component;
  std::size_t next_index = 0;
  std::size_t num_components = 0;

  explicit Tarjan(const linalg::Matrix& m)
      : p(m),
        n(m.rows()),
        index(n, 0),
        lowlink(n, 0),
        on_stack(n, false),
        visited(n, false),
        component(n, 0) {}

  void run() {
    for (std::size_t v = 0; v < n; ++v)
      if (!visited[v]) strong_connect(v);
  }

  // Explicit-stack DFS to avoid recursion-depth limits on large chains.
  struct Frame {
    std::size_t v;
    std::size_t next_child;
  };

  void strong_connect(std::size_t root) {
    std::vector<Frame> frames{{root, 0}};
    enter(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      bool descended = false;
      while (f.next_child < n) {
        const std::size_t w = f.next_child++;
        if (p(f.v, w) <= 0.0) continue;
        if (!visited[w]) {
          enter(w);
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[f.v] = std::min(lowlink[f.v], index[w]);
      }
      if (descended) continue;
      // Finished v: pop component if v is a root.
      const std::size_t v = f.v;
      frames.pop_back();
      if (!frames.empty())
        lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                            lowlink[v]);
      if (lowlink[v] == index[v]) {
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component[w] = num_components;
          if (w == v) break;
        }
        ++num_components;
      }
    }
  }

  void enter(std::size_t v) {
    visited[v] = true;
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
  }
};

}  // namespace

Classification classify(const Dtmc& chain) {
  Tarjan tarjan(chain.transition_matrix());
  tarjan.run();

  const std::size_t n = chain.num_states();
  Classification out;
  out.component = std::move(tarjan.component);
  out.num_components = tarjan.num_components;

  // An SCC is closed iff no member has a positive-probability edge to a
  // state in a different SCC.
  std::vector<bool> closed(out.num_components, true);
  const auto& p = chain.transition_matrix();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (p(i, j) > 0.0 && out.component[i] != out.component[j])
        closed[out.component[i]] = false;

  out.recurrent.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.recurrent[i] = closed[out.component[i]];
  return out;
}

bool is_absorbing_chain(const Dtmc& chain) {
  const Classification cls = classify(chain);
  for (std::size_t i = 0; i < chain.num_states(); ++i)
    if (cls.recurrent[i] && !chain.is_absorbing(i)) return false;
  // Every recurrent state is absorbing. Since every finite chain reaches a
  // recurrent class with probability 1, every state reaches an absorbing
  // state; additionally require at least one absorbing state to exist.
  return !chain.absorbing_states().empty();
}

}  // namespace zc::markov
