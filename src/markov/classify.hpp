#pragma once

/// \file classify.hpp
/// Structural classification of DTMC states into transient and recurrent
/// via strongly-connected components (Tarjan). A state is recurrent iff
/// its SCC has no edge leaving the component.

#include <vector>

#include "markov/dtmc.hpp"

namespace zc::markov {

/// Result of the SCC-based classification.
struct Classification {
  /// component[i]: SCC index of state i; components are numbered in
  /// reverse topological order (an SCC only reaches SCCs with lower or
  /// equal index... see classify() docs).
  std::vector<std::size_t> component;
  std::size_t num_components = 0;
  /// recurrent[i]: true iff state i lies in a closed (bottom) SCC.
  std::vector<bool> recurrent;

  [[nodiscard]] bool is_transient(std::size_t i) const {
    return !recurrent[i];
  }
};

/// Classify all states of `chain`. Component indices follow Tarjan's
/// completion order, which is a reverse topological order of the
/// condensation: every edge between distinct SCCs goes from a higher
/// component index to a lower one.
[[nodiscard]] Classification classify(const Dtmc& chain);

/// True iff the chain is *absorbing* in the textbook sense: every state
/// can reach some absorbing state (equivalently, every recurrent class is
/// a single absorbing state).
[[nodiscard]] bool is_absorbing_chain(const Dtmc& chain);

}  // namespace zc::markov
