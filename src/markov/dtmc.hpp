#pragma once

/// \file dtmc.hpp
/// Discrete-time Markov chains over a finite state space: validated
/// stochastic matrix plus optional state names. The substrate underneath
/// the paper's DRM family (Sec. 3.1 / 4.1).

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace zc::markov {

/// A finite DTMC. Immutable after construction; value semantics.
class Dtmc {
 public:
  /// Construct from a row-stochastic matrix. Preconditions: `p` square,
  /// entries in [-eps, 1+eps], every row sums to 1 within `row_sum_tol`.
  /// \param state_names optional; empty means auto-names "s0", "s1", ...
  explicit Dtmc(linalg::Matrix p, std::vector<std::string> state_names = {},
                double row_sum_tol = 1e-9);

  [[nodiscard]] std::size_t num_states() const noexcept { return p_.rows(); }
  [[nodiscard]] const linalg::Matrix& transition_matrix() const noexcept {
    return p_;
  }
  [[nodiscard]] double probability(std::size_t from, std::size_t to) const {
    return p_(from, to);
  }

  [[nodiscard]] const std::string& state_name(std::size_t i) const {
    ZC_EXPECTS(i < names_.size());
    return names_[i];
  }

  /// State `i` is absorbing iff p(i,i) = 1.
  [[nodiscard]] bool is_absorbing(std::size_t i) const;

  /// Indices of all absorbing states, ascending.
  [[nodiscard]] std::vector<std::size_t> absorbing_states() const;

  /// Indices of all non-absorbing states, ascending.
  [[nodiscard]] std::vector<std::size_t> non_absorbing_states() const;

  /// States reachable from `from` (including itself) via positive-
  /// probability paths.
  [[nodiscard]] std::vector<std::size_t> reachable_from(std::size_t from) const;

 private:
  linalg::Matrix p_;
  std::vector<std::string> names_;
};

}  // namespace zc::markov
