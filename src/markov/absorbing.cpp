#include "markov/absorbing.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "markov/classify.hpp"

namespace zc::markov {

namespace {

linalg::Matrix extract_q(const Dtmc& chain,
                         const std::vector<std::size_t>& transient) {
  linalg::Matrix q(transient.size(), transient.size());
  for (std::size_t i = 0; i < transient.size(); ++i)
    for (std::size_t j = 0; j < transient.size(); ++j)
      q(i, j) = chain.probability(transient[i], transient[j]);
  return q;
}

linalg::Matrix extract_r(const Dtmc& chain,
                         const std::vector<std::size_t>& transient,
                         const std::vector<std::size_t>& absorbing) {
  linalg::Matrix r(transient.size(), absorbing.size());
  for (std::size_t i = 0; i < transient.size(); ++i)
    for (std::size_t k = 0; k < absorbing.size(); ++k)
      r(i, k) = chain.probability(transient[i], absorbing[k]);
  return r;
}

linalg::Lu lu_of_i_minus(const linalg::Matrix& q) {
  const linalg::Matrix m = linalg::Matrix::identity(q.rows()) - q;
  auto lu = linalg::Lu::decompose(m);
  // (I-Q) is non-singular for absorbing chains (Perron-Frobenius; the
  // paper cites [6] for the same fact about P'_n - I).
  ZC_ASSERT(lu.has_value());
  return *std::move(lu);
}

}  // namespace

AbsorbingAnalysis::AbsorbingAnalysis(const Dtmc& chain)
    : transient_(chain.non_absorbing_states()),
      absorbing_(chain.absorbing_states()),
      q_(extract_q(chain, transient_)),
      r_(extract_r(chain, transient_, absorbing_)),
      lu_(lu_of_i_minus(q_)),
      n_(lu_.inverse()),
      b_(lu_.solve(r_)) {
  ZC_EXPECTS(!absorbing_.empty());
  ZC_EXPECTS(is_absorbing_chain(chain));
}

std::size_t AbsorbingAnalysis::transient_position(std::size_t original) const {
  const auto it =
      std::lower_bound(transient_.begin(), transient_.end(), original);
  ZC_EXPECTS(it != transient_.end() && *it == original);
  return static_cast<std::size_t>(it - transient_.begin());
}

std::size_t AbsorbingAnalysis::absorbing_position(std::size_t original) const {
  const auto it =
      std::lower_bound(absorbing_.begin(), absorbing_.end(), original);
  ZC_EXPECTS(it != absorbing_.end() && *it == original);
  return static_cast<std::size_t>(it - absorbing_.begin());
}

double AbsorbingAnalysis::absorption_probability(std::size_t from,
                                                 std::size_t into) const {
  const std::size_t k = absorbing_position(into);
  if (std::binary_search(absorbing_.begin(), absorbing_.end(), from))
    return from == into ? 1.0 : 0.0;
  return b_(transient_position(from), k);
}

linalg::Vector AbsorbingAnalysis::expected_steps() const {
  const linalg::Vector ones(transient_.size(), 1.0);
  return lu_.solve(ones);
}

double AbsorbingAnalysis::expected_visits(std::size_t from,
                                          std::size_t to) const {
  return n_(transient_position(from), transient_position(to));
}

linalg::Vector AbsorbingAnalysis::solve_transient(
    const linalg::Vector& b) const {
  ZC_EXPECTS(b.size() == transient_.size());
  return lu_.solve(b);
}

}  // namespace zc::markov
