#include "markov/reward.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace zc::markov {

MarkovRewardModel::MarkovRewardModel(Dtmc chain, linalg::Matrix rewards)
    : chain_(std::move(chain)),
      rewards_(std::move(rewards)),
      analysis_(chain_) {
  ZC_EXPECTS(rewards_.rows() == chain_.num_states());
  ZC_EXPECTS(rewards_.cols() == chain_.num_states());
  // Zero reward wherever there is no transition, and zero self-loop reward
  // on absorbing states (finiteness of the total reward).
  for (std::size_t i = 0; i < chain_.num_states(); ++i) {
    for (std::size_t j = 0; j < chain_.num_states(); ++j) {
      if (chain_.probability(i, j) == 0.0) ZC_EXPECTS(rewards_(i, j) == 0.0);
    }
    if (chain_.is_absorbing(i)) ZC_EXPECTS(rewards_(i, i) == 0.0);
  }
}

linalg::Vector MarkovRewardModel::one_step_reward() const {
  const auto& transient = analysis_.transient_states();
  linalg::Vector w(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    const std::size_t s = transient[i];
    double acc = 0.0;
    for (std::size_t j = 0; j < chain_.num_states(); ++j)
      acc += chain_.probability(s, j) * rewards_(s, j);
    w[i] = acc;
  }
  return w;
}

linalg::Vector MarkovRewardModel::expected_total_reward() const {
  // a = Qa + w  <=>  (I-Q) a = w  — the paper's Eq. (2).
  return analysis_.solve_transient(one_step_reward());
}

double MarkovRewardModel::expected_total_reward(std::size_t from) const {
  ZC_EXPECTS(from < chain_.num_states());
  if (chain_.is_absorbing(from)) return 0.0;
  const auto& transient = analysis_.transient_states();
  const auto it = std::lower_bound(transient.begin(), transient.end(), from);
  const auto pos = static_cast<std::size_t>(it - transient.begin());
  return expected_total_reward()[pos];
}

linalg::Vector MarkovRewardModel::second_moment_total_reward() const {
  // T_i = c_{iJ} + T_J with J ~ P(i, .). Conditioning on the first step:
  //   E[T_i^2] = sum_j p_ij (c_ij^2 + 2 c_ij E[T_j] + E[T_j^2])
  // which is again a linear system (I-Q) m2 = u with
  //   u_i = sum_j p_ij (c_ij^2 + 2 c_ij m1_j),   m1_j = 0 for absorbing j.
  const auto& transient = analysis_.transient_states();
  const linalg::Vector m1 = expected_total_reward();

  // m1 by original index for convenient lookup.
  linalg::Vector m1_full(chain_.num_states(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i)
    m1_full[transient[i]] = m1[i];

  linalg::Vector u(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    const std::size_t s = transient[i];
    double acc = 0.0;
    for (std::size_t j = 0; j < chain_.num_states(); ++j) {
      const double p = chain_.probability(s, j);
      if (p == 0.0) continue;
      const double c = rewards_(s, j);
      acc += p * (c * c + 2.0 * c * m1_full[j]);
    }
    u[i] = acc;
  }
  return analysis_.solve_transient(u);
}

linalg::Vector MarkovRewardModel::variance_total_reward() const {
  const linalg::Vector m1 = expected_total_reward();
  linalg::Vector m2 = second_moment_total_reward();
  for (std::size_t i = 0; i < m2.size(); ++i) {
    m2[i] -= m1[i] * m1[i];
    // Cancellation can leave a tiny negative variance; clamp.
    if (m2[i] < 0.0) m2[i] = 0.0;
  }
  return m2;
}

double MarkovRewardModel::variance_total_reward(std::size_t from) const {
  ZC_EXPECTS(from < chain_.num_states());
  if (chain_.is_absorbing(from)) return 0.0;
  const auto& transient = analysis_.transient_states();
  const auto it = std::lower_bound(transient.begin(), transient.end(), from);
  const auto pos = static_cast<std::size_t>(it - transient.begin());
  return variance_total_reward()[pos];
}

double MarkovRewardModel::expected_total_reward_given_absorption(
    std::size_t from, std::size_t into) const {
  ZC_EXPECTS(from < chain_.num_states());
  ZC_EXPECTS(chain_.is_absorbing(into));
  if (chain_.is_absorbing(from)) {
    ZC_EXPECTS(from == into);  // conditioning event must have mass
    return 0.0;
  }

  // b_j(into) by original index.
  const std::size_t n = chain_.num_states();
  linalg::Vector b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (chain_.is_absorbing(j)) {
      b[j] = (j == into) ? 1.0 : 0.0;
    } else {
      b[j] = analysis_.absorption_probability(j, into);
    }
  }
  ZC_EXPECTS(b[from] > 0.0);

  // y_i = E[T 1{absorb in into}] solves y = Q y + u with
  // u_i = sum_j p_ij c_ij b_j.
  const auto& transient = analysis_.transient_states();
  linalg::Vector u(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    const std::size_t s = transient[i];
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      acc += chain_.probability(s, j) * rewards_(s, j) * b[j];
    u[i] = acc;
  }
  const linalg::Vector y = analysis_.solve_transient(u);
  const auto it = std::lower_bound(transient.begin(), transient.end(), from);
  const auto pos = static_cast<std::size_t>(it - transient.begin());
  return y[pos] / b[from];
}

}  // namespace zc::markov
