#include "markov/transient.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::markov {

linalg::Vector distribution_after(const Dtmc& chain,
                                  const linalg::Vector& initial,
                                  std::size_t steps) {
  ZC_EXPECTS(initial.size() == chain.num_states());
  linalg::Vector dist = initial;
  for (std::size_t k = 0; k < steps; ++k)
    dist = linalg::mul_left(dist, chain.transition_matrix());
  return dist;
}

double k_step_probability(const Dtmc& chain, std::size_t from, std::size_t to,
                          std::size_t steps) {
  ZC_EXPECTS(from < chain.num_states());
  ZC_EXPECTS(to < chain.num_states());
  linalg::Vector initial(chain.num_states(), 0.0);
  initial[from] = 1.0;
  return distribution_after(chain, initial, steps)[to];
}

double absorbed_within(const Dtmc& chain, std::size_t from, std::size_t into,
                       std::size_t horizon) {
  ZC_EXPECTS(chain.is_absorbing(into));
  // Once in `into` the chain stays there, so the k-step probability of
  // being in `into` *is* the cumulative absorption probability.
  return k_step_probability(chain, from, into, horizon);
}

double absorption_series(const Dtmc& chain, std::size_t from, std::size_t into,
                         std::size_t horizon) {
  ZC_EXPECTS(chain.is_absorbing(into));
  const auto transient = chain.non_absorbing_states();
  const auto it = std::lower_bound(transient.begin(), transient.end(), from);
  ZC_EXPECTS(it != transient.end() && *it == from);

  // Restrict to transient states: row vector iterated through P', dotted
  // with the one-step absorption column each step.
  const std::size_t m = transient.size();
  linalg::Vector row(m, 0.0);
  row[static_cast<std::size_t>(it - transient.begin())] = 1.0;

  linalg::Matrix p_prime(m, m);
  linalg::Vector into_col(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j)
      p_prime(i, j) = chain.probability(transient[i], transient[j]);
    into_col[i] = chain.probability(transient[i], into);
  }

  numerics::KahanSum total;
  for (std::size_t k = 1; k <= horizon; ++k) {
    total.add(linalg::dot(row, into_col));
    row = linalg::mul_left(row, p_prime);
  }
  return total.value();
}

}  // namespace zc::markov
