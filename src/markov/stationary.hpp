#pragma once

/// \file stationary.hpp
/// Stationary distributions of irreducible DTMCs (power iteration and a
/// direct linear-solve). Not needed for the zeroconf DRM itself (which is
/// absorbing) but part of a complete Markov substrate; used by tests and
/// by the network-maintenance example.

#include <optional>

#include "linalg/matrix.hpp"
#include "markov/dtmc.hpp"

namespace zc::markov {

/// Options for iterative stationary solvers.
struct StationaryOptions {
  double tol = 1e-12;        ///< L-inf tolerance on successive iterates
  std::size_t max_iter = 100000;
};

/// Power iteration on pi <- pi P from the uniform distribution. Returns
/// nullopt when it fails to converge (e.g. periodic chains).
[[nodiscard]] std::optional<linalg::Vector> stationary_power(
    const Dtmc& chain, const StationaryOptions& opts = {});

/// Direct solve of pi (P - I) = 0 with the normalization sum(pi)=1
/// replacing one equation. Works for any irreducible chain including
/// periodic ones.
[[nodiscard]] linalg::Vector stationary_direct(const Dtmc& chain);

}  // namespace zc::markov
