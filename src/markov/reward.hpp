#pragma once

/// \file reward.hpp
/// Markov reward models: a DTMC plus per-transition rewards (the paper's
/// cost interpretation, Sec. 3.1/3.3). Provides the mean total accumulated
/// reward until absorption — the paper's Eq. (2) — and, beyond the paper,
/// the second moment and variance of the total reward.

#include "markov/absorbing.hpp"
#include "markov/dtmc.hpp"

namespace zc::markov {

/// A DTMC with rewards attached to transitions. Rewards on the diagonal of
/// absorbing states must be zero, otherwise the total reward diverges
/// (the paper makes the same restriction on C_n).
class MarkovRewardModel {
 public:
  /// \param chain    an absorbing DTMC
  /// \param rewards  same shape as the transition matrix; rewards[i][j] is
  ///                 earned on traversing i -> j.
  MarkovRewardModel(Dtmc chain, linalg::Matrix rewards);

  [[nodiscard]] const Dtmc& chain() const noexcept { return chain_; }
  [[nodiscard]] const linalg::Matrix& rewards() const noexcept {
    return rewards_;
  }
  [[nodiscard]] const AbsorbingAnalysis& analysis() const noexcept {
    return analysis_;
  }

  /// Mean total accumulated reward from each transient state until
  /// absorption: solves a = Q a + w, i.e. the paper's Eq. (2).
  /// Indexed by position within analysis().transient_states().
  [[nodiscard]] linalg::Vector expected_total_reward() const;

  /// Mean total reward starting from the given *original* state index.
  /// Zero for absorbing states.
  [[nodiscard]] double expected_total_reward(std::size_t from) const;

  /// Second moment E[T^2] of the total reward from each transient state.
  /// (Extension beyond the paper, which reports only means.)
  [[nodiscard]] linalg::Vector second_moment_total_reward() const;

  /// Var[T] from each transient state.
  [[nodiscard]] linalg::Vector variance_total_reward() const;

  /// Var[T] from the given original state index (0 for absorbing states).
  [[nodiscard]] double variance_total_reward(std::size_t from) const;

  /// E[T | ultimately absorbed in `into`], starting from original state
  /// `from`. Solves the restricted system
  ///   y = (I-Q)^{-1} u,  u_i = sum_j p_ij c_ij b_j(into),
  /// where b_j(into) is the absorption probability into `into`, and
  /// returns y / b(from). Requires P(absorb in `into` | from) > 0.
  [[nodiscard]] double expected_total_reward_given_absorption(
      std::size_t from, std::size_t into) const;

 private:
  /// w_i = sum_j p_ij * rewards_ij over *all* states j.
  [[nodiscard]] linalg::Vector one_step_reward() const;

  Dtmc chain_;
  linalg::Matrix rewards_;
  AbsorbingAnalysis analysis_;
};

}  // namespace zc::markov
