#include "markov/dtmc.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::markov {

Dtmc::Dtmc(linalg::Matrix p, std::vector<std::string> state_names,
           double row_sum_tol)
    : p_(std::move(p)), names_(std::move(state_names)) {
  ZC_EXPECTS(p_.square());
  ZC_EXPECTS(p_.rows() > 0);
  ZC_EXPECTS(names_.empty() || names_.size() == p_.rows());

  constexpr double kEntryTol = 1e-12;
  for (std::size_t i = 0; i < p_.rows(); ++i) {
    numerics::KahanSum row_sum;
    for (std::size_t j = 0; j < p_.cols(); ++j) {
      const double v = p_(i, j);
      ZC_EXPECTS(v >= -kEntryTol && v <= 1.0 + kEntryTol);
      row_sum.add(v);
    }
    ZC_EXPECTS(std::fabs(row_sum.value() - 1.0) <= row_sum_tol);
  }

  if (names_.empty()) {
    names_.reserve(p_.rows());
    for (std::size_t i = 0; i < p_.rows(); ++i) {
      // Built via insert rather than `"s" + to_string(i)`: the rvalue
      // operator+ overload trips GCC 12's -Wrestrict false positive
      // (PR 105651) at -O3, which -Werror turns fatal.
      std::string name = std::to_string(i);
      name.insert(name.begin(), 's');
      names_.push_back(std::move(name));
    }
  }
}

bool Dtmc::is_absorbing(std::size_t i) const {
  ZC_EXPECTS(i < num_states());
  return p_(i, i) == 1.0;
}

std::vector<std::size_t> Dtmc::absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_states(); ++i)
    if (is_absorbing(i)) out.push_back(i);
  return out;
}

std::vector<std::size_t> Dtmc::non_absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_states(); ++i)
    if (!is_absorbing(i)) out.push_back(i);
  return out;
}

std::vector<std::size_t> Dtmc::reachable_from(std::size_t from) const {
  ZC_EXPECTS(from < num_states());
  std::vector<bool> seen(num_states(), false);
  std::vector<std::size_t> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const std::size_t s = stack.back();
    stack.pop_back();
    for (std::size_t j = 0; j < num_states(); ++j) {
      if (!seen[j] && p_(s, j) > 0.0) {
        seen[j] = true;
        stack.push_back(j);
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_states(); ++i)
    if (seen[i]) out.push_back(i);
  return out;
}

}  // namespace zc::markov
