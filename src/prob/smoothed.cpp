#include "prob/smoothed.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::prob {

namespace {

struct Knots {
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Quantile-subsampled CDF knots: x_j = Q(j/m), y_j = (j/m) * (1-loss),
/// deduplicated on ties (keeping the largest CDF value per x).
Knots build_knots(const EmpiricalDelay& measured, std::size_t max_knots) {
  ZC_EXPECTS(measured.arrived_count() >= 2);
  ZC_EXPECTS(max_knots >= 2);
  const std::size_t m =
      std::min(max_knots - 1, measured.arrived_count() - 1);
  const double arrival_mass = 1.0 - measured.loss_probability();

  Knots knots;
  for (std::size_t j = 0; j <= m; ++j) {
    const double p = static_cast<double>(j) / static_cast<double>(m);
    const double x = measured.arrived_quantile(p);
    const double y = p * arrival_mass;
    if (!knots.xs.empty() && x <= knots.xs.back()) {
      knots.ys.back() = y;  // tie: keep the top of the ECDF step
      continue;
    }
    knots.xs.push_back(x);
    knots.ys.push_back(y);
  }
  ZC_ENSURES(knots.xs.size() >= 2);  // needs >= 2 distinct arrival values
  return knots;
}

}  // namespace

namespace {

numerics::MonotoneCubic make_curve(const EmpiricalDelay& measured,
                                   std::size_t max_knots) {
  Knots knots = build_knots(measured, max_knots);
  return numerics::MonotoneCubic(std::move(knots.xs), std::move(knots.ys));
}

}  // namespace

SmoothedEmpiricalDelay::SmoothedEmpiricalDelay(
    const EmpiricalDelay& measured, std::size_t max_knots)
    : curve_(make_curve(measured, max_knots)),
      loss_(measured.loss_probability()),
      mean_(measured.mean_given_arrival()),
      knot_count_(curve_.size()) {}

double SmoothedEmpiricalDelay::cdf(double t) const {
  return std::clamp(curve_(t), 0.0, 1.0 - loss_);
}

double SmoothedEmpiricalDelay::survival(double t) const {
  return std::max(loss_, 1.0 - cdf(t));
}

std::optional<double> SmoothedEmpiricalDelay::sample(Rng& rng) const {
  if (rng.bernoulli(loss_)) return std::nullopt;
  // Inverse transform through the smooth CDF by bisection.
  const double target = rng.uniform() * (1.0 - loss_);
  double lo = curve_.x_min(), hi = curve_.x_max();
  for (int iter = 0; iter < 60 && hi - lo > 1e-12 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (curve_(mid) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::string SmoothedEmpiricalDelay::name() const {
  return "SmoothedEmpirical(knots=" + std::to_string(knot_count_) +
         ",loss=" + format_sig(loss_) + ")";
}

std::unique_ptr<DelayDistribution> SmoothedEmpiricalDelay::clone() const {
  return std::make_unique<SmoothedEmpiricalDelay>(*this);
}

}  // namespace zc::prob
