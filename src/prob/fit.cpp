#include "prob/fit.hpp"

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace zc::prob {

std::unique_ptr<DelayDistribution> ExponentialFit::to_distribution() const {
  return paper_reply_delay(loss, lambda, shift);
}

ExponentialFit fit_defective_exponential(const EmpiricalDelay& measured,
                                         double shift_quantile) {
  ZC_EXPECTS(measured.arrived_count() > 0);
  ZC_EXPECTS(0.0 <= shift_quantile && shift_quantile < 1.0);

  ExponentialFit fit;
  fit.loss = measured.loss_probability();
  fit.shift = measured.arrived_quantile(shift_quantile);
  const double mean = measured.mean_given_arrival();
  // Guard degenerate data where all arrivals share one timestamp.
  const double tail_mean = mean > fit.shift ? mean - fit.shift : 1e-12;
  fit.lambda = 1.0 / tail_mean;
  ZC_ENSURES(fit.lambda > 0.0);
  return fit;
}

}  // namespace zc::prob
