#pragma once

/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation: xoshiro256++ with
/// SplitMix64 seeding. Self-contained so that simulation results are
/// reproducible across standard libraries and platforms.

#include <array>
#include <cstdint>

namespace zc::prob {

/// xoshiro256++ generator (Blackman & Vigna). Passes BigCrush; 2^256-1
/// period; suitable for Monte-Carlo work (not cryptography).
class Rng {
 public:
  /// Seed via SplitMix64 expansion of a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with rate `lambda` > 0.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Standard normal deviate (Marsaglia polar method; caches the pair).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Uniform integer in [0, bound) (unbiased via rejection).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Split off an independently-seeded child generator; deterministic.
  [[nodiscard]] Rng split() noexcept;

  // UniformRandomBitGenerator interface, for interop with <random>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace zc::prob
