#include "prob/rng.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::prob {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix64 output makes this
  // astronomically unlikely, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  // Inverse transform; uniform() < 1 so log argument is > 0.
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: two deviates per accepted pair.
  while (true) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s <= 0.0 || s >= 1.0) continue;
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace zc::prob
