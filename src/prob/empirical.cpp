#include "prob/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "numerics/kahan.hpp"

namespace zc::prob {

Empirical::Empirical(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  ZC_EXPECTS(!sorted_.empty());
  for (double s : sorted_) ZC_EXPECTS(s >= 0.0);
  std::sort(sorted_.begin(), sorted_.end());
  numerics::KahanSum acc;
  for (double s : sorted_) acc.add(s);
  mean_ = acc.value() / static_cast<double>(sorted_.size());
}

double Empirical::cdf(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::mean() const { return mean_; }

double Empirical::sample(Rng& rng) const {
  return sorted_[rng.uniform_below(sorted_.size())];
}

std::string Empirical::name() const {
  return "Empirical(n=" + std::to_string(sorted_.size()) + ")";
}

std::unique_ptr<ProperDistribution> Empirical::clone() const {
  return std::make_unique<Empirical>(*this);
}

double Empirical::quantile(double p) const {
  ZC_EXPECTS(0.0 <= p && p <= 1.0);
  if (p <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p * n));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

EmpiricalDelay::EmpiricalDelay(std::vector<double> arrived,
                               std::size_t lost_count)
    // Braced-init evaluates left to right, so `empty()` is read before
    // the move — unlike function-argument evaluation, which is unordered.
    : EmpiricalDelay(
          Prepared{arrived.empty(), std::move(arrived), lost_count}) {}

EmpiricalDelay::EmpiricalDelay(Prepared prepared)
    : arrived_(prepared.none_arrived ? std::vector<double>{0.0}
                                     : std::move(prepared.arrived)),
      loss_(0.0),
      all_lost_(prepared.none_arrived) {
  const std::size_t n_arrived = all_lost_ ? 0 : arrived_.count();
  const std::size_t total = n_arrived + prepared.lost_count;
  ZC_EXPECTS(total > 0);
  loss_ =
      static_cast<double>(prepared.lost_count) / static_cast<double>(total);
}

double EmpiricalDelay::cdf(double t) const {
  if (all_lost_) return 0.0;
  return (1.0 - loss_) * arrived_.cdf(t);
}

double EmpiricalDelay::survival(double t) const {
  if (all_lost_) return 1.0;
  return loss_ + (1.0 - loss_) * (1.0 - arrived_.cdf(t));
}

double EmpiricalDelay::mean_given_arrival() const {
  ZC_EXPECTS(!all_lost_);
  return arrived_.mean();
}

double EmpiricalDelay::arrived_quantile(double p) const {
  ZC_EXPECTS(!all_lost_);
  return arrived_.quantile(p);
}

std::optional<double> EmpiricalDelay::sample(Rng& rng) const {
  if (all_lost_ || rng.bernoulli(loss_)) return std::nullopt;
  return arrived_.sample(rng);
}

std::string EmpiricalDelay::name() const {
  return "EmpiricalDelay(n=" + std::to_string(arrived_count()) +
         ",loss=" + std::to_string(loss_) + ")";
}

std::unique_ptr<DelayDistribution> EmpiricalDelay::clone() const {
  return std::make_unique<EmpiricalDelay>(*this);
}

EmpiricalDelay measure(const DelayDistribution& truth, std::size_t trials,
                       Rng& rng) {
  ZC_EXPECTS(trials > 0);
  std::vector<double> arrived;
  arrived.reserve(trials);
  std::size_t lost = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    if (const auto delay = truth.sample(rng); delay.has_value()) {
      arrived.push_back(*delay);
    } else {
      ++lost;
    }
  }
  return EmpiricalDelay(std::move(arrived), lost);
}

}  // namespace zc::prob
