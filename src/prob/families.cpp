#include "prob/families.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::prob {

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) { ZC_EXPECTS(rate > 0.0); }

double Exponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-rate_ * t);
}

double Exponential::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-rate_ * t);
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

std::string Exponential::name() const {
  return "Exponential(rate=" + format_sig(rate_) + ")";
}

std::unique_ptr<ProperDistribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  ZC_EXPECTS(shape > 0.0);
  ZC_EXPECTS(scale > 0.0);
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(t / scale_, shape_));
}

double Weibull::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-std::pow(t / scale_, shape_));
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::sample(Rng& rng) const {
  // Inverse transform: t = scale * (-ln(1-U))^(1/shape).
  return scale_ * std::pow(rng.exponential(1.0), 1.0 / shape_);
}

std::string Weibull::name() const {
  return "Weibull(shape=" + format_sig(shape_) + ",scale=" +
         format_sig(scale_) + ")";
}

std::unique_ptr<ProperDistribution> Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  ZC_EXPECTS(0.0 <= lo && lo < hi);
}

double Uniform::cdf(double t) const {
  if (t <= lo_) return 0.0;
  if (t >= hi_) return 1.0;
  return (t - lo_) / (hi_ - lo_);
}

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

std::string Uniform::name() const {
  return "Uniform(" + format_sig(lo_) + "," + format_sig(hi_) + ")";
}

std::unique_ptr<ProperDistribution> Uniform::clone() const {
  return std::make_unique<Uniform>(*this);
}

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  ZC_EXPECTS(value >= 0.0);
}

double Deterministic::cdf(double t) const { return t >= value_ ? 1.0 : 0.0; }

double Deterministic::mean() const { return value_; }

double Deterministic::sample(Rng&) const { return value_; }

std::string Deterministic::name() const {
  return "Deterministic(" + format_sig(value_) + ")";
}

std::unique_ptr<ProperDistribution> Deterministic::clone() const {
  return std::make_unique<Deterministic>(*this);
}

// --------------------------------------------------------------------- Erlang

Erlang::Erlang(unsigned shape, double rate) : shape_(shape), rate_(rate) {
  ZC_EXPECTS(shape >= 1);
  ZC_EXPECTS(rate > 0.0);
}

double Erlang::survival(double t) const {
  if (t <= 0.0) return 1.0;
  // S(t) = e^{-rate t} * sum_{i=0}^{k-1} (rate t)^i / i!
  const double x = rate_ * t;
  double term = 1.0;
  double sum = 1.0;
  for (unsigned i = 1; i < shape_; ++i) {
    term *= x / static_cast<double>(i);
    sum += term;
  }
  return std::exp(-x) * sum;
}

double Erlang::cdf(double t) const { return 1.0 - survival(t); }

double Erlang::mean() const { return static_cast<double>(shape_) / rate_; }

double Erlang::sample(Rng& rng) const {
  double total = 0.0;
  for (unsigned i = 0; i < shape_; ++i) total += rng.exponential(rate_);
  return total;
}

std::string Erlang::name() const {
  return "Erlang(k=" + std::to_string(shape_) + ",rate=" + format_sig(rate_) +
         ")";
}

std::unique_ptr<ProperDistribution> Erlang::clone() const {
  return std::make_unique<Erlang>(*this);
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  ZC_EXPECTS(sigma > 0.0);
}

double LogNormal::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  // Phi((ln t - mu)/sigma) via erfc for tail accuracy.
  const double z = (std::log(t) - mu_) / sigma_;
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double LogNormal::survival(double t) const {
  if (t <= 0.0) return 1.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return 0.5 * std::erfc(z / std::numbers::sqrt2);
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

std::string LogNormal::name() const {
  return "LogNormal(mu=" + format_sig(mu_) + ",sigma=" + format_sig(sigma_) +
         ")";
}

std::unique_ptr<ProperDistribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

// ------------------------------------------------------------ Hypoexponential

Hypoexponential::Hypoexponential(std::vector<double> rates)
    : rates_(std::move(rates)) {
  ZC_EXPECTS(!rates_.empty());
  for (double r : rates_) ZC_EXPECTS(r > 0.0);
  for (std::size_t i = 0; i < rates_.size(); ++i)
    for (std::size_t j = i + 1; j < rates_.size(); ++j)
      ZC_EXPECTS(rates_[i] != rates_[j]);

  // Partial-fraction coefficients: C_i = prod_{j != i} rate_j/(rate_j-rate_i).
  coeffs_.resize(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    double c = 1.0;
    for (std::size_t j = 0; j < rates_.size(); ++j) {
      if (j == i) continue;
      c *= rates_[j] / (rates_[j] - rates_[i]);
    }
    coeffs_[i] = c;
  }
}

double Hypoexponential::survival(double t) const {
  if (t <= 0.0) return 1.0;
  double s = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    s += coeffs_[i] * std::exp(-rates_[i] * t);
  // Guard against tiny negative values from cancellation in the tail.
  return std::clamp(s, 0.0, 1.0);
}

double Hypoexponential::cdf(double t) const { return 1.0 - survival(t); }

double Hypoexponential::mean() const {
  double m = 0.0;
  for (double r : rates_) m += 1.0 / r;
  return m;
}

double Hypoexponential::sample(Rng& rng) const {
  double total = 0.0;
  for (double r : rates_) total += rng.exponential(r);
  return total;
}

std::string Hypoexponential::name() const {
  std::string s = "Hypoexponential(rates=";
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    if (i > 0) s += ",";
    s += format_sig(rates_[i]);
  }
  return s + ")";
}

std::unique_ptr<ProperDistribution> Hypoexponential::clone() const {
  return std::make_unique<Hypoexponential>(*this);
}

}  // namespace zc::prob
