#pragma once

/// \file smoothed.hpp
/// Nonparametric smooth reply-delay model: a monotone-cubic (PCHIP)
/// interpolation of the measured ECDF. The alternative to the parametric
/// fit of fit.hpp when the delay data does not look exponential —
/// differentiable enough for the optimizer while committing to no family.

#include "prob/delay.hpp"
#include "prob/empirical.hpp"
#include "numerics/pchip.hpp"

namespace zc::prob {

/// Smooth defective delay distribution built from measurements.
class SmoothedEmpiricalDelay final : public DelayDistribution {
 public:
  /// \param measured   the measurement campaign (loss + arrived delays);
  ///                   needs at least two distinct arrival values.
  /// \param max_knots  cap on interpolation knots (quantile-subsampled
  ///                   when the sample is larger).
  explicit SmoothedEmpiricalDelay(const EmpiricalDelay& measured,
                                  std::size_t max_knots = 256);

  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double loss_probability() const override { return loss_; }
  [[nodiscard]] double mean_given_arrival() const override { return mean_; }
  /// Inverse-transform sampling through the smooth CDF (bisection).
  [[nodiscard]] std::optional<double> sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] std::size_t knots() const noexcept { return knot_count_; }

 private:
  numerics::MonotoneCubic curve_;
  double loss_;
  double mean_;
  std::size_t knot_count_;
};

}  // namespace zc::prob
