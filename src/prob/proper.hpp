#pragma once

/// \file proper.hpp
/// Interface for *proper* (non-defective) distributions of non-negative
/// delays: total probability mass 1. Defectiveness (packet loss) is layered
/// on top by `zc::prob::DefectiveDelay`.

#include <memory>
#include <string>

#include "prob/rng.hpp"

namespace zc::prob {

/// A proper probability distribution on [0, inf).
class ProperDistribution {
 public:
  virtual ~ProperDistribution() = default;

  /// P(X <= t); 0 for t < 0.
  [[nodiscard]] virtual double cdf(double t) const = 0;

  /// P(X > t) = 1 - cdf(t); override where a direct formula is more
  /// accurate for tail probabilities.
  [[nodiscard]] virtual double survival(double t) const {
    return 1.0 - cdf(t);
  }

  /// E[X].
  [[nodiscard]] virtual double mean() const = 0;

  /// Draw one value.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;

  /// Human-readable name, e.g. "Exponential(rate=10)".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<ProperDistribution> clone() const = 0;

 protected:
  ProperDistribution() = default;
  ProperDistribution(const ProperDistribution&) = default;
  ProperDistribution& operator=(const ProperDistribution&) = default;
};

}  // namespace zc::prob
