#pragma once

/// \file fit.hpp
/// Fitting smooth parametric reply-delay models to measurements. The
/// optimization and calibration machinery differentiates F_X in r; an
/// empirical ECDF is a step function, so measured data should be fitted
/// to the paper's shifted defective exponential before being fed into
/// derivative-based analyses (Sec. 7's measure-then-model workflow).

#include "prob/delay.hpp"
#include "prob/empirical.hpp"

namespace zc::prob {

/// Parameters of a fitted shifted defective exponential
/// (the paper's F_X of Sec. 4.3).
struct ExponentialFit {
  double loss = 0.0;    ///< observed loss fraction (1 - l)
  double lambda = 1.0;  ///< rate of the exponential tail
  double shift = 0.0;   ///< round-trip floor d

  /// Materialize the fitted distribution.
  [[nodiscard]] std::unique_ptr<DelayDistribution> to_distribution() const;
};

/// Moment/quantile fit of the paper's F_X to measured reply delays:
///   loss   = observed loss fraction,
///   shift  = `shift_quantile` of the arrived delays (robust minimum),
///   lambda = 1 / (mean - shift)  (matches the conditional mean).
/// Requires at least one observed arrival.
[[nodiscard]] ExponentialFit fit_defective_exponential(
    const EmpiricalDelay& measured, double shift_quantile = 0.001);

}  // namespace zc::prob
