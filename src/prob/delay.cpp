#include "prob/delay.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"
#include "prob/families.hpp"

namespace zc::prob {

double DelayDistribution::log_survival(double t) const {
  return std::log(survival(t));
}

DefectiveDelay::DefectiveDelay(std::unique_ptr<ProperDistribution> base,
                               double loss, double shift)
    : base_(std::move(base)), loss_(loss), shift_(shift) {
  ZC_EXPECTS(base_ != nullptr);
  ZC_EXPECTS(0.0 <= loss_ && loss_ < 1.0);
  ZC_EXPECTS(shift_ >= 0.0);
}

DefectiveDelay::DefectiveDelay(const DefectiveDelay& other)
    : base_(other.base_->clone()),
      loss_(other.loss_),
      shift_(other.shift_) {}

DefectiveDelay& DefectiveDelay::operator=(const DefectiveDelay& other) {
  if (this != &other) {
    base_ = other.base_->clone();
    loss_ = other.loss_;
    shift_ = other.shift_;
  }
  return *this;
}

double DefectiveDelay::cdf(double t) const {
  if (t < shift_) return 0.0;
  return (1.0 - loss_) * base_->cdf(t - shift_);
}

double DefectiveDelay::survival(double t) const {
  if (t < shift_) return 1.0;
  // loss + (1-loss) * S_base(t-shift): exact even for loss ~ 1e-15 because
  // the base survival is evaluated directly (no 1-cdf cancellation).
  return loss_ + (1.0 - loss_) * base_->survival(t - shift_);
}

double DefectiveDelay::mean_given_arrival() const {
  return shift_ + base_->mean();
}

std::optional<double> DefectiveDelay::sample(Rng& rng) const {
  if (rng.bernoulli(loss_)) return std::nullopt;
  return shift_ + base_->sample(rng);
}

std::string DefectiveDelay::name() const {
  return "Defective(loss=" + format_sig(loss_) + ",shift=" +
         format_sig(shift_) + "," + base_->name() + ")";
}

std::unique_ptr<DelayDistribution> DefectiveDelay::clone() const {
  return std::make_unique<DefectiveDelay>(*this);
}

std::unique_ptr<DelayDistribution> paper_reply_delay(double loss,
                                                     double lambda, double d) {
  return std::make_unique<DefectiveDelay>(std::make_unique<Exponential>(lambda),
                                          loss, d);
}

}  // namespace zc::prob
