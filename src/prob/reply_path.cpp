#include "prob/reply_path.hpp"

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace zc::prob {

ReplyPath::ReplyPath(Leg probe, Leg processing, Leg reply, double floor)
    : probe_(std::move(probe)),
      processing_(std::move(processing)),
      reply_(std::move(reply)),
      floor_(floor),
      loss_(0.0) {
  ZC_EXPECTS(probe_.delay != nullptr);
  ZC_EXPECTS(processing_.delay != nullptr);
  ZC_EXPECTS(reply_.delay != nullptr);
  ZC_EXPECTS(floor_ >= 0.0);
  for (const Leg* leg : {&probe_, &processing_, &reply_})
    ZC_EXPECTS(0.0 <= leg->loss && leg->loss < 1.0);
  loss_ = 1.0 - (1.0 - probe_.loss) * (1.0 - processing_.loss) *
                    (1.0 - reply_.loss);
}

std::optional<double> ReplyPath::sample(Rng& rng) const {
  double total = floor_;
  for (const Leg* leg : {&probe_, &processing_, &reply_}) {
    if (rng.bernoulli(leg->loss)) return std::nullopt;
    total += leg->delay->sample(rng);
  }
  return total;
}

std::unique_ptr<DelayDistribution> ReplyPath::to_analytic() const {
  const auto* pe = dynamic_cast<const Exponential*>(probe_.delay.get());
  const auto* ce = dynamic_cast<const Exponential*>(processing_.delay.get());
  const auto* re = dynamic_cast<const Exponential*>(reply_.delay.get());
  if (pe == nullptr || ce == nullptr || re == nullptr) return nullptr;
  const std::vector<double> rates{pe->rate(), ce->rate(), re->rate()};
  for (std::size_t i = 0; i < rates.size(); ++i)
    for (std::size_t j = i + 1; j < rates.size(); ++j)
      if (rates[i] == rates[j]) return nullptr;
  return std::make_unique<DefectiveDelay>(
      std::make_unique<Hypoexponential>(rates), loss_, floor_);
}

EmpiricalDelay ReplyPath::to_empirical(std::size_t trials, Rng& rng) const {
  ZC_EXPECTS(trials > 0);
  std::vector<double> arrived;
  arrived.reserve(trials);
  std::size_t lost = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    if (const auto t = sample(rng); t.has_value()) {
      arrived.push_back(*t);
    } else {
      ++lost;
    }
  }
  return EmpiricalDelay(std::move(arrived), lost);
}

}  // namespace zc::prob
