#pragma once

/// \file empirical.hpp
/// Empirical distributions built from observations. This is the workflow
/// the paper asks for in Sec. 7: measure reply delays in a real network,
/// feed the empirical F_X into the cost model.

#include <vector>

#include "prob/delay.hpp"
#include "prob/proper.hpp"

namespace zc::prob {

/// Empirical proper distribution: the ECDF of a sample set.
class Empirical final : public ProperDistribution {
 public:
  /// \param samples  observed delays; must be non-empty, all >= 0.
  explicit Empirical(std::vector<double> samples);

  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double mean() const override;
  /// Bootstrap sampling: uniform draw from the observations.
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  /// p-quantile (nearest-rank), p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Empirical *defective* delay: built from a measurement campaign in which
/// some probes never got a reply. Records the observed loss fraction and
/// the ECDF of the delays that did arrive.
class EmpiricalDelay final : public DelayDistribution {
 public:
  /// \param arrived     delays of replies that arrived (may be empty only
  ///                    if everything was lost)
  /// \param lost_count  number of probes whose reply never arrived
  EmpiricalDelay(std::vector<double> arrived, std::size_t lost_count);

  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double loss_probability() const override { return loss_; }
  [[nodiscard]] double mean_given_arrival() const override;
  [[nodiscard]] std::optional<double> sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] std::size_t arrived_count() const noexcept {
    return all_lost_ ? 0 : arrived_.count();
  }

  /// p-quantile of the *arrived* delays; requires at least one arrival.
  [[nodiscard]] double arrived_quantile(double p) const;

 private:
  /// Bundles the emptiness flag with the sample vector so that both travel
  /// together through the delegating constructor (braced-init-list
  /// evaluation is left-to-right, unlike function arguments).
  struct Prepared {
    bool none_arrived;
    std::vector<double> arrived;
    std::size_t lost_count;
  };

  explicit EmpiricalDelay(Prepared prepared);

  Empirical arrived_;
  double loss_;
  bool all_lost_ = false;
};

/// Run a measurement campaign against any delay distribution: draw
/// `trials` samples and summarize them as an EmpiricalDelay. Used to
/// validate the measure-then-model workflow end to end.
[[nodiscard]] EmpiricalDelay measure(const DelayDistribution& truth,
                                     std::size_t trials, Rng& rng);

}  // namespace zc::prob
