#pragma once

/// \file families.hpp
/// Concrete proper distribution families on [0, inf): exponential, Weibull,
/// uniform, deterministic, Erlang and hypoexponential. The paper's
/// demonstration uses an exponential; the other families support the
/// sensitivity ablation (Sec. 7 calls for measured distributions — we show
/// the conclusions are robust to the family choice).

#include <vector>

#include "prob/proper.hpp"

namespace zc::prob {

/// Exponential(rate).
class Exponential final : public ProperDistribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape k, scale): survival = exp(-(t/scale)^k).
class Weibull final : public ProperDistribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

/// Uniform on [lo, hi], 0 <= lo < hi.
class Uniform final : public ProperDistribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Point mass at `value` >= 0.
class Deterministic final : public ProperDistribution {
 public:
  explicit Deterministic(double value);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  double value_;
};

/// Erlang(k, rate): sum of k iid Exponential(rate) stages.
class Erlang final : public ProperDistribution {
 public:
  Erlang(unsigned shape, double rate);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  unsigned shape_;
  double rate_;
};

/// LogNormal(mu, sigma): log X ~ Normal(mu, sigma). The classic model of
/// measured network round-trip times (heavy right tail).
class LogNormal final : public ProperDistribution {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

/// Hypoexponential: sum of independent exponentials with *distinct* rates
/// (the analytic form of a multi-leg network path built from exponential
/// legs). Survival via partial fractions: S(t) = sum_i C_i e^{-rate_i t}.
class Hypoexponential final : public ProperDistribution {
 public:
  /// Rates must be positive and pairwise distinct.
  explicit Hypoexponential(std::vector<double> rates);
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ProperDistribution> clone() const override;

 private:
  std::vector<double> rates_;
  std::vector<double> coeffs_;  ///< partial-fraction coefficients C_i
};

}  // namespace zc::prob
