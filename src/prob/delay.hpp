#pragma once

/// \file delay.hpp
/// The reply-delay abstraction at the heart of the paper's model: a
/// possibly *defective* distribution F_X of the time between sending an
/// ARP probe and receiving the reply. Defectiveness (Sec. 3.2) encodes
/// packet loss: lim_{t->inf} F_X(t) = l < 1 and 1-l is the probability
/// the reply never arrives.
///
/// Numerical note: the paper's scenarios use l = 1-1e-15. Code must never
/// compute survival as 1 - cdf(t) in that regime; implementations expose
/// `survival` directly, built from the *loss probability* (1-l), which is
/// the user-supplied parameter.

#include <memory>
#include <optional>
#include <string>

#include "prob/proper.hpp"

namespace zc::prob {

/// Possibly-defective distribution of ARP reply delay.
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  /// F_X(t) = P(reply arrives and arrives within t); -> 1-loss as t->inf.
  [[nodiscard]] virtual double cdf(double t) const = 0;

  /// 1 - F_X(t) = P(no reply by time t) >= loss_probability(); must be
  /// computed without cancellation (never as `1 - cdf(t)` when losses are
  /// tiny).
  [[nodiscard]] virtual double survival(double t) const = 0;

  /// log(survival(t)); default wraps survival(). The model's pi_n products
  /// reach 1e-120, so a log-domain path is provided for cross-checks.
  [[nodiscard]] virtual double log_survival(double t) const;

  /// 1 - l: probability the reply never arrives.
  [[nodiscard]] virtual double loss_probability() const = 0;

  /// l = P(reply eventually arrives).
  [[nodiscard]] double arrival_mass() const { return 1.0 - loss_probability(); }

  /// E[X | reply arrives].
  [[nodiscard]] virtual double mean_given_arrival() const = 0;

  /// Draw a reply delay; nullopt when the reply is lost.
  [[nodiscard]] virtual std::optional<double> sample(Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<DelayDistribution> clone() const = 0;

 protected:
  DelayDistribution() = default;
  DelayDistribution(const DelayDistribution&) = default;
  DelayDistribution& operator=(const DelayDistribution&) = default;
};

/// Defective delay built from a proper distribution: with probability
/// `loss` the reply never arrives; otherwise the delay is
/// `shift + B` where `B ~ base`. The paper's F_X (Sec. 4.3) is exactly
/// DefectiveDelay(Exponential(lambda), loss = 1-l, shift = d).
class DefectiveDelay final : public DelayDistribution {
 public:
  /// \param base   proper distribution of the delay beyond `shift`
  /// \param loss   probability in [0, 1) that the reply never arrives
  /// \param shift  deterministic offset d >= 0 (round-trip lower bound)
  DefectiveDelay(std::unique_ptr<ProperDistribution> base, double loss,
                 double shift);

  DefectiveDelay(const DefectiveDelay& other);
  DefectiveDelay& operator=(const DefectiveDelay& other);
  DefectiveDelay(DefectiveDelay&&) noexcept = default;
  DefectiveDelay& operator=(DefectiveDelay&&) noexcept = default;

  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double loss_probability() const override { return loss_; }
  [[nodiscard]] double mean_given_arrival() const override;
  [[nodiscard]] std::optional<double> sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] const ProperDistribution& base() const { return *base_; }
  [[nodiscard]] double shift() const noexcept { return shift_; }

 private:
  std::unique_ptr<ProperDistribution> base_;
  double loss_;
  double shift_;
};

/// The paper's demonstration distribution (Sec. 4.3):
/// F_X(t) = (1-loss) * (1 - e^{-lambda (t-d)}) for t >= d, else 0.
/// \param loss    1-l, the probability a reply never arrives
/// \param lambda  rate; mean reply time given arrival is d + 1/lambda
/// \param d       round-trip delay lower bound
[[nodiscard]] std::unique_ptr<DelayDistribution> paper_reply_delay(
    double loss, double lambda, double d);

}  // namespace zc::prob
