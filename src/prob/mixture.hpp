#pragma once

/// \file mixture.hpp
/// Weighted mixtures of reply-delay distributions: the aggregate F_X seen
/// when the responding host is itself random (heterogeneous fleets of
/// fast/slow appliances).
///
/// Caution (and the point of the heterogeneity ablation): feeding the
/// mixture into the standard model mixes at the *probe* level, but in the
/// protocol every probe of an attempt interrogates the *same* host. The
/// attempt-level treatment lives in core/heterogeneous.hpp; this class is
/// the naive baseline and the correct per-probe sampler.

#include <memory>
#include <vector>

#include "prob/delay.hpp"

namespace zc::prob {

/// Convex combination of delay distributions.
class MixtureDelay final : public DelayDistribution {
 public:
  struct Component {
    double weight = 0.0;
    std::shared_ptr<const DelayDistribution> distribution;
  };

  /// Weights must be positive and sum to 1 (within 1e-9).
  explicit MixtureDelay(std::vector<Component> components);

  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double survival(double t) const override;
  [[nodiscard]] double loss_probability() const override { return loss_; }
  [[nodiscard]] double mean_given_arrival() const override;
  /// Samples the component first, then the component's delay — i.e.
  /// per-draw host choice.
  [[nodiscard]] std::optional<double> sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }

 private:
  std::vector<Component> components_;
  double loss_;
};

}  // namespace zc::prob
