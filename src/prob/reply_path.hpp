#pragma once

/// \file reply_path.hpp
/// Physical decomposition of the reply-delay distribution F_X. The paper
/// folds probe loss, responder busyness and reply loss into a single
/// defective distribution; this module builds that distribution from the
/// physical legs of the path:
///
///   probe transit (loss + delay)  ->  responder processing (delay)
///     ->  reply transit (loss + delay)
///
/// plus a deterministic propagation floor (the paper's round-trip d).
/// When every random leg is exponential with pairwise-distinct rates the
/// effective conditional delay is hypoexponential, and an *analytic*
/// DefectiveDelay is available; in general, an empirical one is estimated
/// by sampling. Both paths are cross-checked in tests.

#include <memory>

#include "prob/delay.hpp"
#include "prob/empirical.hpp"

namespace zc::prob {

/// One transit leg: Bernoulli loss plus a proper delay.
struct Leg {
  double loss = 0.0;  ///< per-leg packet loss probability, in [0, 1)
  std::unique_ptr<ProperDistribution> delay;  ///< transit/processing delay
};

/// Three-leg ARP reply path.
class ReplyPath {
 public:
  /// \param probe       probe transit leg
  /// \param processing  responder processing (loss models a busy host that
  ///                    drops the probe)
  /// \param reply       reply transit leg
  /// \param floor       deterministic round-trip floor d >= 0
  ReplyPath(Leg probe, Leg processing, Leg reply, double floor);

  /// Probability that no reply ever arrives:
  /// 1 - (1-loss_probe)(1-loss_proc)(1-loss_reply).
  [[nodiscard]] double effective_loss() const noexcept { return loss_; }

  /// Draw an end-to-end reply delay; nullopt if any leg loses the packet.
  [[nodiscard]] std::optional<double> sample(Rng& rng) const;

  /// Analytic effective distribution; available only when all three leg
  /// delays are Exponential with pairwise-distinct rates (then the sum is
  /// hypoexponential). Returns nullptr otherwise.
  [[nodiscard]] std::unique_ptr<DelayDistribution> to_analytic() const;

  /// Empirical effective distribution from `trials` sampled transits.
  [[nodiscard]] EmpiricalDelay to_empirical(std::size_t trials,
                                            Rng& rng) const;

 private:
  Leg probe_;
  Leg processing_;
  Leg reply_;
  double floor_;
  double loss_;
};

}  // namespace zc::prob
