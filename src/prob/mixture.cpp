#include "prob/mixture.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/strings.hpp"
#include "numerics/kahan.hpp"

namespace zc::prob {

MixtureDelay::MixtureDelay(std::vector<Component> components)
    : components_(std::move(components)), loss_(0.0) {
  ZC_EXPECTS(!components_.empty());
  numerics::KahanSum weight_sum, loss_sum;
  for (const Component& c : components_) {
    ZC_EXPECTS(c.weight > 0.0);
    ZC_EXPECTS(c.distribution != nullptr);
    weight_sum.add(c.weight);
    loss_sum.add(c.weight * c.distribution->loss_probability());
  }
  ZC_EXPECTS(std::fabs(weight_sum.value() - 1.0) <= 1e-9);
  loss_ = loss_sum.value();
}

double MixtureDelay::cdf(double t) const {
  numerics::KahanSum acc;
  for (const Component& c : components_)
    acc.add(c.weight * c.distribution->cdf(t));
  return acc.value();
}

double MixtureDelay::survival(double t) const {
  numerics::KahanSum acc;
  for (const Component& c : components_)
    acc.add(c.weight * c.distribution->survival(t));
  return acc.value();
}

double MixtureDelay::mean_given_arrival() const {
  // E[X | arrival] = sum_h w_h (1-loss_h) E[X_h | arrival] / (1-loss).
  ZC_EXPECTS(loss_ < 1.0);
  numerics::KahanSum acc;
  for (const Component& c : components_) {
    const double arrival = 1.0 - c.distribution->loss_probability();
    if (arrival > 0.0)
      acc.add(c.weight * arrival * c.distribution->mean_given_arrival());
  }
  return acc.value() / (1.0 - loss_);
}

std::optional<double> MixtureDelay::sample(Rng& rng) const {
  double u = rng.uniform();
  for (const Component& c : components_) {
    if (u < c.weight) return c.distribution->sample(rng);
    u -= c.weight;
  }
  return components_.back().distribution->sample(rng);
}

std::string MixtureDelay::name() const {
  std::string out = "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " + ";
    out += format_sig(components_[i].weight, 3) + "*" +
           components_[i].distribution->name();
  }
  return out + ")";
}

std::unique_ptr<DelayDistribution> MixtureDelay::clone() const {
  return std::make_unique<MixtureDelay>(*this);
}

}  // namespace zc::prob
