/// TAB-6 — Reproduces the Sec. 6 assessment: with the calibrated costs
/// (E = 5e20, c = 3.5) held fixed and a realistic network (loss 1e-12,
/// d = 1 ms, lambda = 10), the optimal configuration shrinks from the
/// draft's (n=4, r=2) to (n=2, r ~ 1.75) with collision probability
/// ~ 4e-22 and roughly half the configuration time.

#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

int main() {
  using namespace zc;
  bench::banner("TAB-6",
                "assessment under realistic network parameters "
                "(paper Sec. 6)");

  const auto scenario = core::scenarios::sec6().to_params();
  const core::JointOptimum opt = core::joint_optimum(scenario, 12);
  const core::ProtocolParams draft = core::scenarios::draft_unreliable();
  const core::ProtocolParams optimal{opt.n, opt.r};

  analysis::Table table({"configuration", "n", "r", "config time n*r",
                         "mean cost", "P(collision)", "mean waiting [s]"});
  const auto add = [&](const char* label, const core::ProtocolParams& p) {
    table.add_row(
        {label, std::to_string(p.n), zc::format_sig(p.r, 4),
         zc::format_sig(p.n * p.r, 4),
         zc::format_sig(core::mean_cost(scenario, p), 6),
         zc::format_sig(core::error_probability(scenario, p), 3),
         zc::format_sig(core::mean_waiting_time(scenario, p), 4)});
  };
  add("draft (4, 2.0)", draft);
  add("optimized", optimal);
  table.print(std::cout);

  analysis::PaperCheck check("TAB-6");
  check.expect_true("optimal-n", "optimal probe count drops to n = 2",
                    opt.n == 2);
  check.expect_close("optimal-r", 1.75, opt.r, 0.03);
  check.expect_close("collision", 4e-22, opt.error_prob, 0.25);
  check.expect_close("config-time", 3.5,
                     static_cast<double>(opt.n) * opt.r, 0.05);
  check.expect_true("beats-draft",
                    "optimized cost below the draft configuration's",
                    opt.cost < core::mean_cost(scenario, draft));
  check.expect_true(
      "halves-waiting",
      "configuration time roughly halves (8 s -> ~3.5 s)",
      static_cast<double>(opt.n) * opt.r < 0.55 * (draft.n * draft.r));
  // Sensitivity note from the paper: fewer hosts would lower cost further.
  const auto fewer_hosts = scenario.with_q(
      core::ScenarioParams::q_from_hosts(100));
  const core::JointOptimum opt_few = core::joint_optimum(fewer_hosts, 12);
  check.expect_true("fewer-hosts",
                    "assuming fewer than 1000 hosts drops the cost "
                    "further (Sec. 6 closing remark)",
                    opt_few.cost < opt.cost);
  return bench::finish(check);
}
