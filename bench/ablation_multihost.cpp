/// ABL-MULTI — Multi-host contention ablation (ours). The paper's model
/// covers a single configuring host and cites the Uppaal companion study
/// [7] for the simultaneous-configuration case; our simulator covers it
/// directly. Several devices power on at once (outage recovery) on one
/// segment and we measure how the draft's two defenses — probe-conflict
/// detection and the random PROBE_WAIT — affect mutual collisions.
///
/// Expected shape: without any defense, mutual collisions grow with the
/// number of simultaneous joiners; probe-conflict detection plus
/// PROBE_WAIT suppresses them by orders of magnitude; the single-joiner
/// case matches the analytic model regardless.

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/reliability.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"

namespace {

using namespace zc;

constexpr double kLoss = 0.2;
constexpr double kLambda = 25.0;
constexpr double kRoundTrip = 0.02;
constexpr unsigned kHosts = 50;
constexpr unsigned kSpace = 200;

sim::NetworkConfig segment() {
  sim::NetworkConfig config;
  config.address_space = kSpace;
  config.hosts = kHosts;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
  return config;
}

struct GroupStats {
  double collision_rate = 0.0;
  sim::ProportionCi ci{};
  double mean_elapsed = 0.0;
};

GroupStats run_group(unsigned joiners, const sim::ZeroconfConfig& protocol,
                     std::size_t trials, std::uint64_t seed) {
  prob::Rng seeder(seed);
  std::size_t collisions = 0, runs = 0;
  sim::RunningStats elapsed;
  for (std::size_t t = 0; t < trials; ++t) {
    sim::Network net(segment(), seeder.next_u64());
    const auto results = net.run_simultaneous_join(protocol, joiners);
    for (const auto& r : results) {
      ++runs;
      if (r.collision) ++collisions;
      elapsed.add(r.elapsed);
    }
  }
  GroupStats out;
  out.collision_rate =
      static_cast<double>(collisions) / static_cast<double>(runs);
  out.ci = sim::wilson_ci95(collisions, runs);
  out.mean_elapsed = elapsed.mean();
  return out;
}

}  // namespace

int main() {
  bench::banner("ABL-MULTI",
                "simultaneous configuration: draft defenses vs mutual "
                "collisions (cf. related work [7])");

  sim::ZeroconfConfig undefended;
  undefended.schedule = zc::core::ProbeSchedule::uniform(3, 0.2);
  undefended.detect_probe_conflicts = false;
  undefended.probe_wait_max = 0.0;

  sim::ZeroconfConfig defended = undefended;
  defended.detect_probe_conflicts = true;
  defended.probe_wait_max = 1.0;  // draft PROBE_WAIT

  analysis::Table table({"joiners", "undefended P(col)", "95% CI",
                         "defended P(col)", "95% CI",
                         "defended mean elapsed [s]"});
  analysis::PaperCheck check("ABL-MULTI");

  const std::size_t trials = 3000;
  std::vector<double> undefended_rates;
  std::vector<double> defended_rates;
  for (const unsigned joiners : {1u, 2u, 4u, 8u, 16u}) {
    const GroupStats u = run_group(joiners, undefended, trials, 11);
    const GroupStats d = run_group(joiners, defended, trials, 13);
    undefended_rates.push_back(u.collision_rate);
    defended_rates.push_back(d.collision_rate);
    table.add_row(
        {std::to_string(joiners), zc::format_sig(u.collision_rate, 3),
         "[" + zc::format_sig(u.ci.lower, 3) + ", " +
             zc::format_sig(u.ci.upper, 3) + "]",
         zc::format_sig(d.collision_rate, 3),
         "[" + zc::format_sig(d.ci.lower, 3) + ", " +
             zc::format_sig(d.ci.upper, 3) + "]",
         zc::format_sig(d.mean_elapsed, 4)});
  }
  table.print(std::cout);

  // Single joiner = the paper's model: compare to Eq. (4).
  const core::ScenarioParams scenario(
      static_cast<double>(kHosts) / kSpace, 1.0, 1.0,
      prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
  const double analytic =
      core::error_probability(scenario, core::ProtocolParams{3, 0.2});
  std::cout << "\nsingle-joiner analytic collision probability (Eq. 4): "
            << zc::format_sig(analytic, 4) << '\n';

  check.expect_true(
      "single-joiner-matches-model",
      "undefended single joiner reproduces the analytic Eq. (4) rate",
      std::fabs(undefended_rates.front() - analytic) <
          0.2 * analytic + 5e-4);
  check.expect_true("contention-grows",
                    "undefended collisions grow with simultaneous joiners",
                    undefended_rates.back() > 2.0 * undefended_rates[1]);
  bool defense_helps = true;
  for (std::size_t i = 1; i < defended_rates.size(); ++i)
    defense_helps &= defended_rates[i] <= undefended_rates[i];
  check.expect_true("defense-helps",
                    "probe-conflict detection + PROBE_WAIT never worse, "
                    "and strictly better under high contention",
                    defense_helps &&
                        defended_rates.back() < 0.5 * undefended_rates.back());
  return bench::finish(check);
}
