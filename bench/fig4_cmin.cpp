/// FIG4 — Reproduces Figure 4: the minimal-cost function
/// C_min(r) = C(N(r), r), the lower envelope of the C_n family (Sec. 4.4),
/// in the Fig. 2 scenario.
///
/// Expected shape (paper): lower edge of the union of the C_n graphs;
/// global minimum where the n = 3 curve bottoms out (r ~ 2.14, C ~ 12.6).

#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "exec/parallel.hpp"
#include "numerics/grid.hpp"

int main() {
  using namespace zc;
  bench::banner("FIG4", "minimal-cost function C_min(r) (paper Fig. 4)");

  const auto scenario = core::scenarios::figure2().to_params();
  const auto r_grid = numerics::linspace(0.4, 4.0, 200);

  // Envelope and family from one surface: the C_min walk reuses each
  // column's survival ladder, and columns evaluate across the pool.
  const core::CostSurface surface(scenario, 64);
  analysis::Series cmin{"C_min", r_grid, std::vector<double>(r_grid.size())};
  exec::parallel_for(r_grid.size(), [&](std::size_t i) {
    cmin.y[i] = surface.min_over_n(r_grid[i]).cost;
  });
  // Context: the individual C_n curves it envelopes.
  const auto family = surface.costs(r_grid);
  std::vector<analysis::Series> curves{cmin};
  for (unsigned n = 3; n <= 6; ++n)
    curves.push_back({"C_" + std::to_string(n), r_grid, family.row(n)});

  analysis::PlotOptions plot;
  plot.title = "Figure 4: C_min(r) (marker 1) under the C_n family";
  plot.x_label = "r [s]";
  plot.y_max = 40.0;
  plot.y_min = 10.0;
  analysis::ascii_plot(std::cout, curves, plot);

  analysis::GnuplotOptions gp;
  gp.title = "Minimal-cost function C_min(r) (paper Fig. 4)";
  gp.x_label = "r";
  gp.y_label = "cost";
  gp.output = "fig4_cmin.png";
  bench::emit_figure("fig4_cmin", curves, gp);

  const core::JointOptimum opt = core::joint_optimum(scenario, 12);
  std::cout << "\nglobal optimum: n = " << opt.n << ", r = "
            << zc::format_sig(opt.r, 5) << ", C = "
            << zc::format_sig(opt.cost, 6) << '\n';

  analysis::PaperCheck check("FIG4");
  bool is_envelope = true;
  for (std::size_t i = 0; i < r_grid.size(); ++i) {
    for (unsigned n = 1; n <= 10; ++n) {
      is_envelope &=
          cmin.y[i] <= core::mean_cost(scenario,
                                       core::ProtocolParams{n, r_grid[i]}) +
                           1e-9;
    }
  }
  check.expect_true("lower-envelope",
                    "C_min(r) <= C_n(r) for all n at every sampled r",
                    is_envelope);
  check.expect_true("global-min-n", "global optimum uses n = 3",
                    opt.n == 3);
  check.expect_close("global-min-r", 2.14, opt.r, 0.02);
  check.expect_close("global-min-cost", 12.60, opt.cost, 0.01);
  // C_min inherits kinks but stays within the plotted band.
  check.expect_between("range-min", 10.0, 14.0, cmin.min_y());
  check.expect_between("range-max", 14.0, 80.0, cmin.max_y());
  return bench::finish(check);
}
