/// FIG6 — Reproduces Figure 6: the collision probability under
/// cost-optimal configuration, E(N(r), r), embedded in the Fig. 5 curve
/// family (Sec. 5).
///
/// Expected shape (paper): sawtooth — piecewise continuously decreasing
/// in r with sharp jumps *up* exactly at the breakpoints of N(r) (one
/// probe fewer), local maxima at those breakpoints; bounded roughly
/// within [1e-54, 1e-35]; minima of cost and of error do NOT coincide
/// (the paper's cost/reliability trade-off).

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "numerics/grid.hpp"

int main() {
  using namespace zc;
  bench::banner("FIG6",
                "collision probability under optimal cost E(N(r), r) "
                "(paper Fig. 6)");

  const auto scenario = core::scenarios::figure2().to_params();
  const double r_lo = 0.6, r_hi = 3.4;
  const auto r_grid = numerics::linspace(r_lo, r_hi, 240);

  const auto sawtooth = analysis::sample_series(
      "E(N(r),r)", r_grid, [&](double r) {
        const unsigned n = core::optimal_n(scenario, r);
        return core::error_probability(scenario,
                                       core::ProtocolParams{n, r});
      });
  // Fig. 5 context curves (n = 3..6 are the ones N(r) passes through).
  std::vector<analysis::Series> curves{sawtooth};
  for (unsigned n = 3; n <= 6; ++n) {
    curves.push_back(analysis::sample_series(
        "E_" + std::to_string(n), r_grid, [&](double r) {
          return core::error_probability(scenario,
                                         core::ProtocolParams{n, r});
        }));
  }

  analysis::PlotOptions plot;
  plot.title =
      "Figure 6: E(N(r), r) (marker 1) embedded in the E_n family (log-y)";
  plot.x_label = "r [s]";
  plot.log_y = true;
  analysis::ascii_plot(std::cout, curves, plot);

  analysis::GnuplotOptions gp;
  gp.title = "Error probability under optimal cost (paper Fig. 6)";
  gp.x_label = "r";
  gp.y_label = "P(error)";
  gp.log_y = true;
  gp.output = "fig6_error_optimal_cost.png";
  bench::emit_figure("fig6_error_optimal_cost", curves, gp);

  // Local maxima of the sawtooth vs the breakpoints of N(r).
  const auto maxima = analysis::local_maxima(sawtooth);
  const auto steps = core::n_breakpoints(scenario, r_lo, r_hi, 256);
  analysis::Table table({"N-breakpoint r", "new n", "nearest sawtooth max"});
  for (std::size_t i = 1; i < steps.size(); ++i) {
    double nearest = 0.0;
    for (const std::size_t m : maxima)
      if (std::fabs(sawtooth.x[m] - steps[i].r_from) <
          std::fabs(nearest - steps[i].r_from))
        nearest = sawtooth.x[m];
    table.add_row({zc::format_sig(steps[i].r_from, 5),
                   std::to_string(steps[i].n), zc::format_sig(nearest, 5)});
  }
  std::cout << '\n';
  table.print(std::cout);

  analysis::PaperCheck check("FIG6");
  check.expect_true("has-sawtooth-maxima",
                    "E(N(r), r) has interior local maxima",
                    !maxima.empty());
  // Each N(r) breakpoint must have a sawtooth maximum within one grid
  // step.
  const double grid_step = r_grid[1] - r_grid[0];
  bool maxima_at_steps = true;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    bool found = false;
    for (const std::size_t m : maxima)
      found |= std::fabs(sawtooth.x[m] - steps[i].r_from) <= 2.0 * grid_step;
    maxima_at_steps &= found;
  }
  check.expect_true("maxima-at-breakpoints",
                    "every N(r) step has a local error maximum",
                    maxima_at_steps);
  // Bounds: roughly [1e-54, 1e-35] per the paper.
  const double lg_max = std::log10(sawtooth.max_y());
  const double lg_min = std::log10(sawtooth.min_y());
  check.expect_between("upper-band", -40.0, -33.0, lg_max);
  check.expect_between("lower-band", -56.0, -45.0, lg_min);
  // Trade-off: the cost optimum is not the reliability optimum.
  const core::JointOptimum cost_opt = core::joint_optimum(scenario, 12);
  const double err_at_cost_opt = core::error_probability(
      scenario, core::ProtocolParams{cost_opt.n, cost_opt.r});
  check.expect_true(
      "tradeoff",
      "error at the cost optimum exceeds the best error on the grid",
      err_at_cost_opt > sawtooth.min_y() * 1.001);
  return bench::finish(check);
}
