/// FIG2 — Reproduces Figure 2: the cost functions C_1(r)..C_8(r) for the
/// Sec. 4.3 demonstration scenario (d=1, l=1-1e-15, lambda=10,
/// q=1000/65024, c=2, E=1e35).
///
/// Expected shape (paper): every C_n has a minimum; the curves for
/// n = 1, 2 are astronomically large (nu = 3) and fall outside the
/// plotted range; among n >= 3 the minima increase with n while the
/// optimal r decreases.

#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "numerics/grid.hpp"

int main() {
  using namespace zc;
  bench::banner("FIG2", "cost functions C_n(r), n = 1..8 (paper Fig. 2)");

  const auto scenario = core::scenarios::figure2().to_params();
  const auto r_grid = numerics::linspace(0.05, 4.0, 160);

  // All eight curves in one parallel surface sweep: each r-column shares
  // its survival ladder across n (O(n) instead of O(n^2) per column).
  const core::CostSurface surface(scenario, 8);
  const auto grid = surface.costs(r_grid);

  std::vector<analysis::Series> curves;
  for (unsigned n = 1; n <= 8; ++n)
    curves.push_back({"C_" + std::to_string(n), r_grid, grid.row(n)});

  analysis::PlotOptions plot;
  plot.title = "Figure 2: C_n(r) for n = 1..8  (viewport clipped to [0, 60];"
               " n = 1, 2 off scale as in the paper)";
  plot.x_label = "r [s]";
  plot.y_max = 60.0;
  plot.y_min = 0.0;
  analysis::ascii_plot(std::cout, curves, plot);

  analysis::GnuplotOptions gp;
  gp.title = "Cost functions C_n(r) (paper Fig. 2)";
  gp.x_label = "r";
  gp.y_label = "mean total cost";
  gp.output = "fig2_cost_functions.png";
  bench::emit_figure("fig2_cost_functions", curves, gp);

  // Per-n minima table — the quantitative content of the figure. The
  // coarse scans inside optimal_r run on the exec pool.
  analysis::Table table({"n", "r_opt", "C_n(r_opt)"});
  std::vector<core::CostMinimum> minima(9);
  for (unsigned n = 1; n <= 8; ++n) {
    minima[n] = core::optimal_r(scenario, n);
    table.add_row({std::to_string(n), zc::format_sig(minima[n].r, 5),
                   zc::format_sig(minima[n].cost, 6)});
  }
  std::cout << '\n';
  table.print(std::cout);

  analysis::PaperCheck check("FIG2");
  check.expect_true("nu-bound",
                    "nu = 3 for E=1e35, 1-l=1e-15 (Sec. 4.4)",
                    core::min_useful_n(1e35, 1e-15) == 3);
  check.expect_true("n1-off-scale", "C_1 minimum >> plot range (>1e15)",
                    minima[1].cost > 1e15);
  check.expect_true("n2-off-scale", "C_2 minimum >> plot range (>1e3)",
                    minima[2].cost > 1e3);
  bool minima_increase = true, ropt_decrease = true;
  for (unsigned n = 4; n <= 8; ++n) {
    minima_increase &= minima[n].cost > minima[n - 1].cost;
    ropt_decrease &= minima[n].r < minima[n - 1].r;
  }
  check.expect_true("minima-order",
                    "C_3(r_opt) < C_4(r_opt) < ... < C_8(r_opt)",
                    minima_increase);
  check.expect_true("ropt-order", "r_opt decreases with n (n = 3..8)",
                    ropt_decrease && minima[3].r > minima[8].r);
  check.expect_close("C3-min", 12.60, minima[3].cost, 0.01);
  check.expect_close("r_opt3", 2.14, minima[3].r, 0.02);
  // Each curve falls from q E at r=0 to its minimum then rises linearly.
  bool all_have_interior_min = true;
  for (unsigned n = 3; n <= 8; ++n) {
    const double at_zero = core::cost_at_zero_r(scenario);
    all_have_interior_min &=
        minima[n].cost < at_zero &&
        minima[n].cost <
            core::mean_cost(scenario, core::ProtocolParams{n, 4.0});
  }
  check.expect_true("interior-minima",
                    "each C_n (n >= 3) dips below both C_n(0) = qE and "
                    "C_n(4)",
                    all_have_interior_min);
  return bench::finish(check);
}
