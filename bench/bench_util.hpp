#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the figure/table benches: banner printing and
/// figure-file emission. Every bench prints (a) the regenerated series or
/// rows, (b) an ASCII rendering of the figure, and (c) a PAPER-CHECK
/// block comparing measured shape against the paper; it exits non-zero if
/// a check fails so CI catches regressions.

#include <filesystem>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "analysis/expectation.hpp"
#include "analysis/gnuplot.hpp"
#include "analysis/series.hpp"
#include "obs/report.hpp"

namespace zc::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& description) {
  std::cout << std::string(100, '=') << '\n'
            << experiment_id << ": " << description << '\n'
            << std::string(100, '=') << '\n';
}

/// Emit figures/<basename>.csv and figures/<basename>.gp under the
/// working directory; warn (but do not fail) on I/O problems, e.g.
/// read-only working dirs.
inline void emit_figure(const std::string& basename,
                        const std::vector<analysis::Series>& series,
                        const analysis::GnuplotOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories("figures", ec);
  const std::string path = "figures/" + basename;
  if (!ec && analysis::write_figure_files(path, series, options)) {
    std::cout << "[figure data: " << path << ".csv, " << path << ".gp]\n";
  } else {
    std::cout << "[warning: could not write " << path
              << ".{csv,gp} - continuing]\n";
  }
}

/// Serialize a run report to `filename` under the working directory —
/// the single funnel every BENCH_*.json manifest goes through, so all of
/// them share the zcopt-run-report schema. Warns (but does not fail) on
/// I/O problems, matching emit_figure.
inline void emit_report(const obs::RunReport& report,
                        const std::string& filename) {
  if (report.write_file(filename)) {
    std::cout << "[bench data: " << filename << "]\n";
  } else {
    std::cout << "[warning: could not write " << filename
              << " - continuing]\n";
  }
}

/// Report the PAPER-CHECK block; returns the process exit code.
inline int finish(const analysis::PaperCheck& check) {
  const bool ok = check.report(std::cout);
  return ok ? 0 : 1;
}

}  // namespace zc::bench
