/// FIG3 — Reproduces Figure 3: N(r), the cost-optimal number of ARP
/// probes as a function of the listening period r (Sec. 4.4), in the
/// Fig. 2 scenario.
///
/// Expected shape (paper): piecewise-constant, non-increasing step
/// function; never below nu = 3.

#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "numerics/grid.hpp"

int main() {
  using namespace zc;
  bench::banner("FIG3", "optimal probe count N(r) (paper Fig. 3)");

  const auto scenario = core::scenarios::figure2().to_params();
  const double r_lo = 0.4, r_hi = 4.0;

  const auto r_grid = numerics::linspace(r_lo, r_hi, 200);
  const auto n_series = analysis::sample_series(
      "N(r)", r_grid, [&](double r) {
        return static_cast<double>(core::optimal_n(scenario, r));
      });

  analysis::PlotOptions plot;
  plot.title = "Figure 3: N(r) - optimal n for given r";
  plot.x_label = "r [s]";
  plot.height = 16;
  analysis::ascii_plot(std::cout, {n_series}, plot);

  analysis::GnuplotOptions gp;
  gp.title = "Optimal probe count N(r) (paper Fig. 3)";
  gp.x_label = "r";
  gp.y_label = "N(r)";
  gp.output = "fig3_optimal_n.png";
  bench::emit_figure("fig3_optimal_n", {n_series}, gp);

  // The exact plateaus, located by bisection.
  const auto steps = core::n_breakpoints(scenario, r_lo, r_hi, 256);
  analysis::Table table({"r_from", "r_to", "N(r)"});
  for (const auto& step : steps)
    table.add_row({zc::format_sig(step.r_from, 6),
                   zc::format_sig(step.r_to, 6), std::to_string(step.n)});
  std::cout << '\n';
  table.print(std::cout);

  analysis::PaperCheck check("FIG3");
  bool non_increasing = true;
  for (std::size_t i = 1; i < steps.size(); ++i)
    non_increasing &= steps[i].n < steps[i - 1].n;
  check.expect_true("monotone-steps",
                    "N(r) steps strictly down as r grows", non_increasing);
  const unsigned nu = core::min_useful_n(scenario.error_cost(), 1e-15);
  bool above_nu = true;
  for (const auto& step : steps) above_nu &= step.n >= nu;
  check.expect_true("nu-floor", "N(r) >= nu = 3 over the plotted range",
                    above_nu);
  check.expect_true("plateau-count",
                    "several plateaus visible over r in [0.4, 4]",
                    steps.size() >= 3);
  check.expect_true("endpoint-values",
                    "many probes at small r (N(0.4) >= 6), few at large r "
                    "(N(4) == 3)",
                    steps.front().n >= 6 && steps.back().n == 3);
  // The 4 -> 3 switch happens just above the draft's r = 2.
  double switch_43 = 0.0;
  for (std::size_t i = 1; i < steps.size(); ++i)
    if (steps[i - 1].n == 4 && steps[i].n == 3) switch_43 = steps[i].r_from;
  check.expect_between("switch-4to3", 2.0, 2.2, switch_43);
  return bench::finish(check);
}
