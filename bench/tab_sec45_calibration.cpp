/// TAB-4.5 — Reproduces the Sec. 4.5 calibration table: the cost
/// parameters (E, c) under which the draft's recommended configurations
/// are cost-optimal.
///
///   r = 2.0 (unreliable link): loss 1e-5,  d = 1,   lambda = 10
///       -> paper derives E = 5e20, c = 3.5
///   r = 0.2 (reliable link):   loss 1e-10, d = 0.1, lambda = 100
///       -> paper derives E = 1e35, c = 0.5

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/calibrate.hpp"
#include "core/cost.hpp"
#include "core/scenarios.hpp"

int main() {
  using namespace zc;
  bench::banner("TAB-4.5",
                "inverse calibration of (E, c) for the draft parameters "
                "(paper Sec. 4.5)");

  struct Row {
    const char* label;
    core::ExponentialScenario setting;
    core::ProtocolParams target;
    double paper_e;
    double paper_c;
  };
  const std::vector<Row> rows{
      {"r=2.0 (wireless)", core::scenarios::sec45_r2(),
       {4, 2.0}, 5e20, 3.5},
      {"r=0.2 (wired)", core::scenarios::sec45_r02(),
       {4, 0.2}, 1e35, 0.5},
  };

  analysis::Table table({"setting", "paper E", "derived E", "paper c",
                         "derived c", "tie vs n", "target optimal?"});
  analysis::PaperCheck check("TAB-4.5");

  for (const Row& row : rows) {
    const auto scenario = row.setting.to_params();
    const auto result = core::calibrate(scenario, row.target);
    if (!result.has_value()) {
      table.add_row({row.label, zc::format_sig(row.paper_e, 3),
                     "no solution", zc::format_sig(row.paper_c, 3), "-",
                     "-", "-"});
      check.expect_true(std::string(row.label) + "-solved",
                        "calibration finds a solution", false);
      continue;
    }
    table.add_row({row.label, zc::format_sig(row.paper_e, 3),
                   zc::format_sig(result->error_cost, 4),
                   zc::format_sig(row.paper_c, 3),
                   zc::format_sig(result->probe_cost, 4),
                   std::to_string(result->competitor),
                   result->target_is_optimal ? "yes" : "no"});

    const std::string id(row.label);
    check.expect_close(id + "-log10E", std::log10(row.paper_e),
                       std::log10(result->error_cost), 0.02);
    // Our c is the exact lower boundary of the probe-cost window in which
    // the target stays optimal (tie against n = 5); the paper's rounded
    // value lies inside that window, slightly above the boundary.
    check.expect_close(id + "-c", row.paper_c, result->probe_cost, 0.5);
    check.expect_true(id + "-c-window",
                      "paper's c lies at/above the derived window boundary",
                      row.paper_c >= result->probe_cost * 0.95);
    check.expect_true(id + "-optimal",
                      "derived (E, c) make the draft target the joint "
                      "cost optimum",
                      result->target_is_optimal);

    // Forward direction: with the *paper's* published (E, c), the target
    // is the joint optimum too.
    const core::JointOptimum forward = core::joint_optimum(
        scenario.with_error_cost(row.paper_e).with_probe_cost(row.paper_c),
        10);
    check.expect_true(id + "-forward",
                      "paper's (E, c) also make the target optimal",
                      forward.n == row.target.n &&
                          std::fabs(forward.r - row.target.r) <
                              0.05 * row.target.r);
  }

  table.print(std::cout);
  return bench::finish(check);
}
