/// PERF — Trial throughput of the allocation-free simulation core. Each
/// scenario (plain join, simultaneous join, full fault soup) is run twice
/// over the same seed sequence: once constructing a fresh Network per
/// trial — the pre-pool driver's behavior — and once on a single reused
/// context via Network::reset(seed). Both passes must produce identical
/// per-trial results (checksummed); only throughput may differ. Emits
/// BENCH_sim_throughput.json recording trials/sec, events/sec, and the
/// pooled-vs-fresh speedup, so CI can track the win (the default join
/// scenario is expected to hold >= 3x).
///
/// `--smoke` shrinks the trial counts for the `perf`-labeled ctest entry.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "exec/seeding.hpp"
#include "prob/delay.hpp"
#include "sim/network.hpp"

namespace {

using namespace zc;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20260808;

struct Scenario {
  std::string name;
  sim::NetworkConfig network;
  sim::ZeroconfConfig protocol;
  unsigned joiners = 1;  ///< 1 = run_join, else run_simultaneous_join
  std::size_t trials_full = 0;
  std::size_t trials_smoke = 0;
};

struct ModeStats {
  double wall_ms = 0.0;
  double trials_per_sec = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
  // Pool telemetry of the (single) pooled context; zero in fresh mode.
  std::size_t pool_slots = 0;
  std::size_t pool_high_water = 0;
  std::uint64_t pool_reuse = 0;
};

/// Mix every observable field of a run outcome into the checksum — the
/// two modes must agree bit for bit, not just on throughput.
std::uint64_t fold(std::uint64_t h, const sim::RunResult& r) {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(r.address);
  mix(r.probes_sent);
  mix(r.attempts);
  mix(r.conflicts);
  mix(r.collision ? 1 : 0);
  mix(r.aborted ? 1 : 0);
  mix_double(r.waiting_time);
  mix_double(r.elapsed);
  return h;
}

ModeStats run_mode(const Scenario& s, std::size_t trials, bool pooled) {
  ModeStats out;
  std::unique_ptr<sim::Network> ctx;
  const auto start = Clock::now();
  for (std::size_t t = 0; t < trials; ++t) {
    // Same counter-based seed sequence in both modes: trial t is the
    // same experiment whether the context is rebuilt or reset.
    const std::uint64_t trial_seed = exec::split_seed(kSeed, t);
    if (!pooled) {
      if (ctx) out.events += ctx->simulator().events_executed();
      ctx = std::make_unique<sim::Network>(s.network, trial_seed);
    } else if (!ctx) {
      ctx = std::make_unique<sim::Network>(s.network, trial_seed);
    } else {
      ctx->reset(trial_seed);
    }
    if (s.joiners <= 1) {
      out.checksum = fold(out.checksum, ctx->run_join(s.protocol));
    } else {
      for (const sim::RunResult& r :
           ctx->run_simultaneous_join(s.protocol, s.joiners))
        out.checksum = fold(out.checksum, r);
    }
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
  out.events += ctx->simulator().events_executed();
  if (pooled) {
    out.pool_slots = ctx->simulator().pool_slots();
    out.pool_high_water = ctx->simulator().pool_high_water();
    out.pool_reuse = ctx->simulator().pool_reuse_count();
  }
  const double secs = out.wall_ms / 1000.0;
  if (secs > 0.0) {
    out.trials_per_sec = static_cast<double>(trials) / secs;
    out.events_per_sec = static_cast<double>(out.events) / secs;
  }
  return out;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  // The default Monte-Carlo workload: 1000 configured hosts, paper reply
  // delays, one joiner. This is the acceptance scenario for the >= 3x
  // pooled speedup — per-trial construction of the 1000-host population
  // dominates the handful of probe events.
  Scenario join;
  join.name = "join";
  join.network.address_space = 65024;
  join.network.hosts = 1000;
  join.network.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.1, 10.0, 0.05));
  join.protocol.schedule = zc::core::ProbeSchedule::uniform(4, 0.25);
  join.trials_full = 1500;
  join.trials_smoke = 200;
  out.push_back(join);

  // Multi-host contention: 8 joiners racing with PROBE_WAIT, avoidance,
  // rate limiting, and announcements (the Uppaal companion scenario).
  Scenario simultaneous;
  simultaneous.name = "simultaneous_join";
  simultaneous.network.address_space = 1000;
  simultaneous.network.hosts = 200;
  simultaneous.network.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.2, 15.0, 0.1));
  simultaneous.protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.5);
  simultaneous.protocol.probe_wait_max = 0.5;
  simultaneous.protocol.avoid_failed_addresses = true;
  simultaneous.protocol.announce_count = 2;
  simultaneous.protocol.announce_interval = 1.0;
  simultaneous.protocol.max_attempts = 50;
  simultaneous.joiners = 8;
  simultaneous.trials_full = 400;
  simultaneous.trials_smoke = 50;
  out.push_back(simultaneous);

  // Every fault class active: the injector, churn hashing, duplication
  // and jitter paths all ride the pooled core.
  Scenario faults;
  faults.name = "full_faults";
  faults.network.address_space = 4096;
  faults.network.hosts = 300;
  faults.network.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.4, 20.0, 0.1));
  faults.network.faults.gilbert_elliott.p_enter_burst = 0.05;
  faults.network.faults.gilbert_elliott.p_exit_burst = 0.25;
  faults.network.faults.gilbert_elliott.loss_bad = 0.9;
  faults.network.faults.blackout.windows.start = 0.5;
  faults.network.faults.blackout.windows.duration = 0.2;
  faults.network.faults.blackout.windows.period = 2.0;
  faults.network.faults.delay_spike.windows.start = 1.0;
  faults.network.faults.delay_spike.windows.duration = 0.5;
  faults.network.faults.delay_spike.windows.period = 3.0;
  faults.network.faults.delay_spike.multiplier = 4.0;
  faults.network.faults.delay_spike.extra = 0.05;
  faults.network.faults.duplication.probability = 0.15;
  faults.network.faults.duplication.copies = 2;
  faults.network.faults.reordering.probability = 0.3;
  faults.network.faults.reordering.max_jitter = 0.2;
  faults.network.faults.host_churn.deaf_fraction = 0.3;
  faults.network.faults.host_churn.period = 4.0;
  faults.network.faults.host_churn.deaf_duration = 1.0;
  faults.protocol.schedule = zc::core::ProbeSchedule::uniform(3, 1.0);
  faults.protocol.max_attempts = 64;
  faults.trials_full = 800;
  faults.trials_smoke = 100;
  out.push_back(faults);

  return out;
}

obs::JsonValue mode_json(const ModeStats& m, std::size_t trials,
                         bool pooled) {
  obs::JsonValue entry = obs::JsonValue::object();
  entry["trials"] = trials;
  entry["wall_ms"] = m.wall_ms;
  entry["trials_per_sec"] = m.trials_per_sec;
  entry["events_per_sec"] = m.events_per_sec;
  entry["events"] = m.events;
  if (pooled) {
    entry["pool_slots"] = m.pool_slots;
    entry["pool_high_water"] = m.pool_high_water;
    entry["pool_reuse"] = m.pool_reuse;
  }
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  bench::banner("PERF-SIM-THROUGHPUT",
                "allocation-free sim core: pooled trial contexts vs "
                "fresh-per-trial baseline");
  if (smoke) std::cout << "[smoke mode: reduced trial counts]\n";

  obs::RunReport report("sim_throughput",
                        "pooled event queue + reusable trial contexts vs "
                        "fresh-network-per-trial baseline");
  report.set_seed(kSeed);
  report.config()["smoke"] = smoke;

  obs::JsonValue rows = obs::JsonValue::array();
  bool identical = true;
  bool positive = true;
  double join_speedup = 0.0;

  for (const Scenario& s : scenarios()) {
    const std::size_t trials = smoke ? s.trials_smoke : s.trials_full;
    const ModeStats fresh = run_mode(s, trials, /*pooled=*/false);
    const ModeStats pooled = run_mode(s, trials, /*pooled=*/true);
    const bool same = fresh.checksum == pooled.checksum;
    const double speedup = fresh.trials_per_sec > 0.0
                               ? pooled.trials_per_sec / fresh.trials_per_sec
                               : 0.0;
    identical &= same;
    positive &= fresh.trials_per_sec > 0.0 && pooled.trials_per_sec > 0.0;
    if (s.name == "join") join_speedup = speedup;

    std::cout << s.name << " (" << trials << " trials)\n"
              << "  fresh-per-trial: " << format_sig(fresh.wall_ms, 4)
              << " ms  " << format_sig(fresh.trials_per_sec, 4)
              << " trials/s  " << format_sig(fresh.events_per_sec, 4)
              << " events/s\n"
              << "  pooled context:  " << format_sig(pooled.wall_ms, 4)
              << " ms  " << format_sig(pooled.trials_per_sec, 4)
              << " trials/s  " << format_sig(pooled.events_per_sec, 4)
              << " events/s\n"
              << "  speedup x" << format_sig(speedup, 3) << "  results "
              << (same ? "identical" : "DIVERGED") << "\n";

    obs::JsonValue row = obs::JsonValue::object();
    row["name"] = s.name;
    row["baseline_fresh"] = mode_json(fresh, trials, false);
    row["pooled"] = mode_json(pooled, trials, true);
    row["speedup_trials_per_sec"] = speedup;
    row["identical_results"] = same;
    rows.push_back(std::move(row));
  }

  report.data()["scenarios"] = std::move(rows);
  report.data()["join_speedup"] = join_speedup;
  report.data()["identical_results"] = identical;
  bench::emit_report(report, "BENCH_sim_throughput.json");

  analysis::PaperCheck check("PERF-SIM-THROUGHPUT");
  check.expect_true("results-identical",
                    "pooled contexts replay the fresh-per-trial results "
                    "bit for bit in every scenario",
                    identical);
  check.expect_true("throughput-positive",
                    "both modes completed with measurable throughput",
                    positive);
  check.expect_true("pooled-3x-join",
                    "reused contexts deliver >= 3x trials/sec on the "
                    "default 1000-host join scenario",
                    join_speedup >= 3.0);
  return bench::finish(check);
}
