/// PERF — Trial-budget cost of fixed-N Monte-Carlo vs the adaptive
/// CI-targeted ladder, at equal collision-rate confidence width. A
/// Fig.-5-style sweep (error probability across probe counts n, on an
/// exaggerated-loss network where collisions are common) is estimated
/// adaptively: each cell stops as soon as its Wilson interval is tight
/// relative to the rate. The fixed-design comparator must pick ONE trial
/// count for the whole sweep — no cell's width is known in advance, so
/// it needs the worst cell's realized count everywhere. The bench
/// reports both budgets and gates on the adaptive ladder spending at
/// most half the fixed design's trials (>= 2x reduction).
///
/// The whole sweep is run twice, at 1 worker thread and at 8, and the
/// two passes are digest-compared (realized counts, every estimate bit,
/// rounds): the ladder's determinism contract, self-checked on every
/// bench run. Emits BENCH_adaptive.json through the RunReport funnel.
///
/// `--smoke` shrinks the budget cap for the `adaptive`-labeled ctest
/// entry.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

constexpr std::uint64_t kSeed = 20260808;
constexpr double kRelCi = 0.3;  ///< target: Wilson half-width <= 30% of rate

/// Exaggerated-loss network (the robustness sweep's stress point): 40%
/// reply loss, slow replies, a busy 100-address segment — collision
/// rates high enough that every cell observes events quickly, yet
/// spread over n so the per-cell sample demand varies by orders of
/// magnitude. That spread is exactly what a fixed design cannot exploit.
sim::NetworkConfig lossy_network() {
  sim::NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay = std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(0.4, 20.0, 0.1));
  return config;
}

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

struct Cell {
  unsigned n = 0;
  sim::MonteCarloResults results;
};

/// One adaptive pass over the sweep at the given thread count.
std::vector<Cell> run_sweep(const std::vector<unsigned>& probe_counts,
                            std::size_t cap, unsigned threads) {
  std::vector<Cell> cells;
  for (const unsigned n : probe_counts) {
    sim::ZeroconfConfig protocol;
    protocol.schedule = core::ProbeSchedule::uniform(n, 1.0);
    sim::MonteCarloOptions opts;
    opts.seed = kSeed + n;
    opts.threads = threads;
    opts.precision.rel_ci_collision = kRelCi;
    opts.precision.min_trials = 256;
    opts.precision.max_trials = cap;
    opts.trials = cap;
    cells.push_back({n, sim::monte_carlo(lossy_network(), protocol, opts)});
  }
  return cells;
}

/// Every byte-determining observable of the sweep in one string.
std::string sweep_digest(const std::vector<Cell>& cells) {
  std::ostringstream os;
  for (const Cell& cell : cells) {
    const sim::MonteCarloResults& r = cell.results;
    os << 'n' << cell.n << ": trials=" << r.trials << " rounds=" << r.rounds
       << " met=" << r.precision_met << " collisions=" << r.collisions
       << " rate=" << hex(r.collision_rate)
       << " ci=[" << hex(r.collision_ci95.lower) << ','
       << hex(r.collision_ci95.upper) << ']'
       << " cost=" << hex(r.model_cost.mean) << ','
       << hex(r.model_cost.ci95_halfwidth) << '\n';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  bench::banner("PERF-ADAPTIVE-BUDGET",
                "CI-targeted adaptive sampling vs fixed trial counts at "
                "equal collision-rate confidence width");
  if (smoke) std::cout << "[smoke mode: reduced budget cap]\n";

  const std::vector<unsigned> probe_counts = {1, 2, 3, 4, 5, 6};
  const std::size_t cap = smoke ? 40000 : 200000;

  // The determinism self-check doubles as the measurement: the serial
  // and 8-thread passes must agree on every byte, so either one is "the"
  // sweep.
  const std::vector<Cell> serial = run_sweep(probe_counts, cap, 1);
  const std::vector<Cell> parallel = run_sweep(probe_counts, cap, 8);
  const bool identical = sweep_digest(serial) == sweep_digest(parallel);

  std::size_t adaptive_total = 0;
  std::size_t worst_cell = 0;
  bool all_met = true;
  for (const Cell& cell : serial) {
    adaptive_total += cell.results.trials;
    if (cell.results.trials > worst_cell) worst_cell = cell.results.trials;
    all_met &= cell.results.precision_met;
  }
  // A fixed design must commit to one N before seeing any data; to make
  // the worst cell's interval as tight as the target demands it needs
  // that cell's realized count in EVERY cell.
  const std::size_t fixed_total = worst_cell * probe_counts.size();
  const double reduction =
      adaptive_total > 0
          ? static_cast<double>(fixed_total) / static_cast<double>(adaptive_total)
          : 0.0;

  std::cout << "cell    trials  rounds  met  collision_rate  ci95_halfwidth\n";
  for (const Cell& cell : serial) {
    const sim::MonteCarloResults& r = cell.results;
    const double half =
        0.5 * (r.collision_ci95.upper - r.collision_ci95.lower);
    std::cout << "n=" << cell.n << "  " << r.trials << "  " << r.rounds
              << "  " << (r.precision_met ? "yes" : "NO ") << "  "
              << format_sig(r.collision_rate, 4) << "  "
              << format_sig(half, 4) << '\n';
  }
  std::cout << "adaptive total: " << adaptive_total
            << " trials; fixed-N design: " << fixed_total << " trials ("
            << worst_cell << " x " << probe_counts.size()
            << " cells); reduction x" << format_sig(reduction, 3)
            << "; 1-vs-8-thread sweep "
            << (identical ? "identical" : "DIVERGED") << '\n';

  obs::RunReport report("adaptive_budget",
                        "fixed vs CI-targeted adaptive trial budgets on a "
                        "fig-5-style collision sweep");
  report.set_seed(kSeed);
  report.config()["smoke"] = smoke;
  report.config()["target_rel_ci"] = kRelCi;
  report.config()["budget_cap"] = cap;
  obs::JsonValue rows = obs::JsonValue::array();
  for (const Cell& cell : serial) {
    const sim::MonteCarloResults& r = cell.results;
    obs::JsonValue row = obs::JsonValue::object();
    row["n"] = cell.n;
    row["trials_realized"] = r.trials;
    row["rounds"] = r.rounds;
    row["precision_met"] = r.precision_met;
    row["collision_rate"] = r.collision_rate;
    row["collision_ci_lower"] = r.collision_ci95.lower;
    row["collision_ci_upper"] = r.collision_ci95.upper;
    rows.push_back(std::move(row));
  }
  report.data()["cells"] = std::move(rows);
  report.data()["adaptive_total_trials"] = adaptive_total;
  report.data()["fixed_total_trials"] = fixed_total;
  report.data()["budget_reduction"] = reduction;
  report.data()["identical_across_threads"] = identical;
  bench::emit_report(report, "BENCH_adaptive.json");

  analysis::PaperCheck check("PERF-ADAPTIVE-BUDGET");
  check.expect_true("deterministic-ladder",
                    "realized trial counts and every estimate bit agree "
                    "between the 1-thread and 8-thread sweeps",
                    identical);
  check.expect_true("targets-met",
                    "every cell reached its collision-rate CI target "
                    "inside the budget cap",
                    all_met);
  check.expect_true("2x-budget-reduction",
                    "adaptive sweep spends <= half the trials of the "
                    "cheapest valid fixed-N design",
                    reduction >= 2.0);
  return bench::finish(check);
}
