/// PERF — Solver micro-benchmarks (google-benchmark). The paper remarks
/// (Sec. 7) that "the numerical computations to derive the results from
/// the model are very simple"; this bench documents that claim in code:
/// the analytic Eq. (3)/(4) evaluations cost microseconds, the
/// LU-based DRM solve is comfortably fast even for large n, and whole
/// optimization sweeps finish in milliseconds.

#include <benchmark/benchmark.h>

#include "core/calibrate.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/drm.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "exec/thread_pool.hpp"
#include "numerics/grid.hpp"
#include "obs/metrics.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

const core::ScenarioParams& fig2() {
  static const core::ScenarioParams scenario =
      core::scenarios::figure2().to_params();
  return scenario;
}

void BM_MeanCostAnalytic(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::mean_cost(fig2(), core::ProtocolParams{n, 1.7}));
  }
}
BENCHMARK(BM_MeanCostAnalytic)->Arg(4)->Arg(16)->Arg(64);

void BM_MeanCostLinearSystem(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::mean_cost_numeric(fig2(), core::ProtocolParams{n, 1.7}));
  }
}
BENCHMARK(BM_MeanCostLinearSystem)->Arg(4)->Arg(16)->Arg(64);

void BM_ErrorProbabilityAnalytic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::error_probability(fig2(), core::ProtocolParams{4, 1.7}));
  }
}
BENCHMARK(BM_ErrorProbabilityAnalytic);

void BM_ErrorProbabilityAbsorbing(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::error_probability_numeric(
        fig2(), core::ProtocolParams{4, 1.7}));
  }
}
BENCHMARK(BM_ErrorProbabilityAbsorbing);

void BM_DrmConstruction(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_drm(fig2(), core::ProtocolParams{n, 1.7}));
  }
}
BENCHMARK(BM_DrmConstruction)->Arg(4)->Arg(32);

void BM_OptimalR(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_r(fig2(), 4));
  }
}
BENCHMARK(BM_OptimalR);

void BM_JointOptimum(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::joint_optimum(fig2(), 8));
  }
}
BENCHMARK(BM_JointOptimum);

void BM_CostVariance(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::cost_variance(fig2(), core::ProtocolParams{4, 1.7}));
  }
}
BENCHMARK(BM_CostVariance);

void BM_CalibrationStationaryE(benchmark::State& state) {
  const auto scenario = core::scenarios::sec45_r2().to_params();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::error_cost_for_stationary_r(
        scenario, core::ProtocolParams{4, 2.0}, 3.5));
  }
}
BENCHMARK(BM_CalibrationStationaryE);

void BM_SimulatedConfigurationRun(benchmark::State& state) {
  const auto hosts = static_cast<unsigned>(state.range(0));
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = hosts;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.1, 10.0, 0.05));
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(4, 0.25);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Network net(config, seed++);
    benchmark::DoNotOptimize(net.run_join(protocol));
  }
}
BENCHMARK(BM_SimulatedConfigurationRun)->Arg(100)->Arg(1000);

// ---- Allocation-free simulation core (event pool + trial reuse) --------
// The same configuration run on a reused trial context: reset(seed)
// re-randomizes in place, so the loop runs allocation-free in steady
// state. Compare against BM_SimulatedConfigurationRun (fresh Network per
// iteration) for the construction overhead the pool removes.

void BM_SimulatedRunPooled(benchmark::State& state) {
  const auto hosts = static_cast<unsigned>(state.range(0));
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = hosts;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.1, 10.0, 0.05));
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(4, 0.25);
  std::uint64_t seed = 1;
  sim::Network net(config, seed);
  for (auto _ : state) {
    net.reset(++seed);
    benchmark::DoNotOptimize(net.run_join(protocol));
  }
}
BENCHMARK(BM_SimulatedRunPooled)->Arg(100)->Arg(1000);

// The event pool's steady-state schedule/fire cycle in isolation: slots
// and heap capacity are warm, so each event is a slab write plus a heap
// sift — no allocator traffic.
void BM_EventPoolScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  double bump = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i)
      (void)simulator.schedule(static_cast<double>(i % 7) * 0.25,
                               [&bump] { bump += 1.0; });
    simulator.run();
  }
  benchmark::DoNotOptimize(bump);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventPoolScheduleFire)->Arg(64)->Arg(1024);

// Context recycling vs rebuilding: reset() re-draws addresses and
// rewinds the clock without freeing hosts; construction pays for the
// population, the subscriber table, and the attach loop every time.
void BM_TrialContextReset(benchmark::State& state) {
  const auto hosts = static_cast<unsigned>(state.range(0));
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = hosts;
  std::uint64_t seed = 1;
  sim::Network net(config, seed);
  for (auto _ : state) net.reset(++seed);
}
BENCHMARK(BM_TrialContextReset)->Arg(100)->Arg(1000);

void BM_TrialContextConstruct(benchmark::State& state) {
  const auto hosts = static_cast<unsigned>(state.range(0));
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = hosts;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Network net(config, ++seed);
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_TrialContextConstruct)->Arg(100)->Arg(1000);

// ---- Parallel execution layer (src/exec) -------------------------------
// Thread-count sweeps over the two hot paths the exec layer accelerates.
// Results are bitwise-identical across the sweep; only wall time moves.

sim::NetworkConfig mc_network() {
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = 1000;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.1, 10.0, 0.05));
  return config;
}

void BM_MonteCarloParallel(benchmark::State& state) {
  const auto network = mc_network();
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(4, 0.25);
  sim::MonteCarloOptions opts;
  opts.trials = 2000;
  opts.seed = 7;
  opts.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo(network, protocol, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.trials));
}
BENCHMARK(BM_MonteCarloParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<long>(zc::exec::hardware_threads()))
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- Observability layer (src/obs) -------------------------------------
// The same Monte-Carlo hot path with metric collection on vs off (runtime
// switch): the difference is the whole per-delivery/per-trial metrics
// bill. The ObsOverhead test in zc_obs_test enforces a ceiling on this
// gap; this bench records the actual numbers.

void BM_MonteCarloMetrics(benchmark::State& state) {
  const auto network = mc_network();
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(4, 0.25);
  sim::MonteCarloOptions opts;
  opts.trials = 2000;
  opts.seed = 7;
  opts.threads = 1;
  const bool enabled = state.range(0) != 0;
  obs::Registry::global().set_enabled(enabled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo(network, protocol, opts));
  }
  obs::Registry::global().set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.trials));
}
BENCHMARK(BM_MonteCarloMetrics)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_JointOptimumParallel(benchmark::State& state) {
  core::ROptOptions opts;
  opts.exec.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::joint_optimum(fig2(), 12, opts));
  }
}
BENCHMARK(BM_JointOptimumParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<long>(zc::exec::hardware_threads()))
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CostSurfaceGrid(benchmark::State& state) {
  const core::CostSurface surface(fig2(), 16);
  const auto r_grid = numerics::linspace(0.05, 4.0, 256);
  exec::ExecOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface.costs(r_grid, opts));
  }
}
BENCHMARK(BM_CostSurfaceGrid)
    ->Arg(1)
    ->Arg(static_cast<long>(zc::exec::hardware_threads()))
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The column cache itself, independent of threading: one amortized
// column against n_max pointwise mean_cost calls.
void BM_CostColumnAmortized(benchmark::State& state) {
  const auto n_max = static_cast<unsigned>(state.range(0));
  const core::CostSurface surface(fig2(), n_max);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface.cost_column(1.7));
  }
}
BENCHMARK(BM_CostColumnAmortized)->Arg(16)->Arg(64);

void BM_CostColumnPointwise(benchmark::State& state) {
  const auto n_max = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    for (unsigned n = 1; n <= n_max; ++n) {
      benchmark::DoNotOptimize(
          core::mean_cost(fig2(), core::ProtocolParams{n, 1.7}));
    }
  }
}
BENCHMARK(BM_CostColumnPointwise)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
