/// CHECK-ORACLE — Throughput and self-test of the differential oracle
/// harness: runs the fuzz-case campaign on the clean tree (expecting
/// zero violations) at 1 thread and at hardware width, checks the
/// byte-identical-report contract, then plants a deliberate evaluator
/// bug through the OracleOptions hook seam and verifies the oracle
/// catches it and the shrinker's minimal reproducer still fails. Emits
/// BENCH_check.json with the wall times and case throughput.

#include <chrono>
#include <functional>
#include <iostream>
#include <string>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "exec/thread_pool.hpp"

namespace {

using namespace zc;
using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& work) {
  const auto start = Clock::now();
  work();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace zc;
  bench::banner("CHECK-ORACLE",
                "differential oracle throughput + planted-bug self-test");

  constexpr std::uint64_t kSeed = 1;
  constexpr std::uint64_t kCases = 500;
  const unsigned hardware = exec::hardware_threads();

  // Clean tree, serial then wide: the acceptance campaign itself.
  check::CheckOptions serial;
  serial.seed = kSeed;
  serial.cases = kCases;
  serial.threads = 1;
  check::CheckOptions wide = serial;
  wide.threads = hardware;

  check::CheckResult serial_result, wide_result;
  const double serial_ms =
      time_ms([&] { serial_result = check::run_check(serial); });
  const double wide_ms = time_ms([&] { wide_result = check::run_check(wide); });
  const std::string serial_bytes =
      check::check_report(serial_result, serial).to_json().dump();
  const std::string wide_bytes =
      check::check_report(wide_result, wide).to_json().dump();

  std::cout << "clean stream: " << kCases << " case(s), seed " << kSeed
            << "\n  threads=1  " << format_sig(serial_ms, 4) << " ms  ("
            << format_sig(1000.0 * static_cast<double>(kCases) / serial_ms, 4)
            << " cases/s)\n  threads=" << hardware << "  "
            << format_sig(wide_ms, 4) << " ms  (x"
            << format_sig(serial_ms / wide_ms, 3) << ")\n";

  // Planted bug: a relative 1e-3 bias in the mean-cost evaluator. The
  // oracle must flag it and the shrunk reproducer must still fail.
  check::CheckOptions planted = serial;
  planted.cases = 64;
  planted.oracle.mean_cost_hook = [](const core::ScenarioParams& scenario,
                                     const core::ProbeSchedule& schedule) {
    return core::mean_cost(scenario, schedule) * (1.0 + 1e-3);
  };
  check::CheckResult planted_result;
  const double planted_ms =
      time_ms([&] { planted_result = check::run_check(planted); });
  bool reproducers_fail = !planted_result.failures.empty();
  for (const check::CheckFailure& failure : planted_result.failures)
    reproducers_fail = reproducers_fail &&
                       check::reproduces(failure.minimal,
                                         failure.shrunk_invariant,
                                         planted.oracle);
  std::cout << "planted bug: " << planted_result.failures.size() << " of "
            << planted.cases << " case(s) flagged, "
            << planted_result.shrink_steps << " shrink step(s), "
            << format_sig(planted_ms, 4) << " ms\n";

  // BENCH_check.json: the clean campaign's report plus the measurements.
  obs::RunReport report = check::check_report(serial_result, serial);
  report.data()["bench"] = [&] {
    obs::JsonValue bench = obs::JsonValue::object();
    bench["hardware_threads"] = hardware;
    bench["serial_wall_ms"] = serial_ms;
    bench["wide_wall_ms"] = wide_ms;
    bench["cases_per_second_serial"] =
        1000.0 * static_cast<double>(kCases) / serial_ms;
    bench["planted_failures"] =
        static_cast<unsigned long long>(planted_result.failures.size());
    bench["planted_shrink_steps"] =
        static_cast<unsigned long long>(planted_result.shrink_steps);
    return bench;
  }();
  bench::emit_report(report, "BENCH_check.json");

  analysis::PaperCheck check("CHECK-ORACLE");
  check.expect_true("clean-stream-passes",
                    "zero violations over the acceptance stream (seed 1, "
                    "500 cases)",
                    serial_result.ok() && wide_result.ok());
  check.expect_true("byte-identical-reports",
                    "check reports agree byte-for-byte at threads 1 vs "
                    "hardware",
                    serial_bytes == wide_bytes);
  check.expect_true("planted-bug-detected",
                    "a 1e-3 mean-cost bias is flagged and every minimal "
                    "reproducer still fails",
                    reproducers_fail);
  return bench::finish(check);
}
