/// PERF — Serial-vs-parallel wall times of the exec-layer hot paths:
/// Monte-Carlo trial fan-out and the joint (n, r) optimization sweep, at
/// thread counts {1, 2, hardware}. Both workloads are declarative
/// ExperimentSpecs executed through engine::CampaignRunner at each
/// thread count; bitwise determinism is checked on the serialized
/// campaign results (cells, optima, and semantic metric sets — the full
/// report payload, not just headline numbers). Emits BENCH_parallel.json
/// with the measurements so CI can track the speedup.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "exec/thread_pool.hpp"
#include "obs/timer.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;
using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& work) {
  const auto start = Clock::now();
  work();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Median-of-3 to keep one-off scheduler noise out of the record.
double timed_median_ms(const std::function<void()>& work) {
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) times.push_back(time_ms(work));
  std::sort(times.begin(), times.end());
  return times[1];
}

struct Measurement {
  std::string name;
  unsigned threads = 1;
  double wall_ms = 0.0;
  double speedup_vs_serial = 1.0;
};

/// The byte content a campaign contributes to a run report: experiments
/// (cells / optima) plus the merged semantic metric set. Equality of
/// these strings across thread counts is the engine's determinism
/// contract.
std::string campaign_bytes(const engine::CampaignResult& campaign) {
  return campaign.to_json().dump() +
         obs::metrics_to_json(campaign.metrics).dump();
}

void emit_json(const engine::CampaignResult& final_campaign,
               const std::vector<Measurement>& rows, unsigned hardware,
               std::uint64_t seed, bool deterministic) {
  obs::RunReport report = final_campaign.report(
      "parallel_speedup",
      "serial vs parallel wall times: monte_carlo + joint_optimum");
  report.set_seed(seed);
  report.config()["hardware_threads"] = hardware;

  obs::JsonValue measurements = obs::JsonValue::array();
  for (const Measurement& m : rows) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = m.name;
    entry["threads"] = m.threads;
    entry["wall_ms"] = m.wall_ms;
    entry["speedup_vs_serial"] = m.speedup_vs_serial;
    measurements.push_back(std::move(entry));
  }
  report.data()["bitwise_deterministic"] = deterministic;
  report.data()["measurements"] = std::move(measurements);

  // Pool utilization is scheduling-dependent: runtime section, never
  // semantic metrics.
  zc::obs::MetricSet runtime;
  zc::exec::ThreadPool::shared().export_metrics(runtime);
  report.set_runtime(runtime);
  report.set_timers(obs::Registry::global().timers_snapshot());
  bench::emit_report(report, "BENCH_parallel.json");
}

}  // namespace

int main() {
  using namespace zc;
  bench::banner("PERF-PARALLEL",
                "serial vs parallel wall times: monte_carlo + joint_optimum");

  const unsigned hardware = exec::hardware_threads();
  std::vector<unsigned> thread_counts{1, 2, hardware};
  if (hardware <= 2) thread_counts = {1, 2};  // 2 still exercises the pool

  std::cout << "hardware threads: " << hardware << "\n\n";

  // The two workloads, declared once and re-run at every thread count.
  constexpr std::uint64_t kSeed = 2026;
  const core::ScenarioParams mc_scenario(
      /*q=*/1000.0 / 65024.0, /*probe_cost=*/2.0, /*error_cost=*/1e35,
      prob::paper_reply_delay(0.1, 10.0, 0.05));
  const engine::ExperimentSpec mc_spec =
      engine::SpecBuilder("monte_carlo_6000_trials", mc_scenario)
          .protocol({4, 0.25})
          .estimator(engine::Estimator::monte_carlo)
          .network(/*address_space=*/65024, /*hosts=*/1000)
          .trials(6000)
          .seed(kSeed)
          .build();
  const engine::ExperimentSpec opt_spec =
      engine::SpecBuilder("joint_optimum_n16", core::scenarios::figure2())
          .optimize(16)
          .build();

  std::vector<Measurement> rows;
  bool deterministic = true;
  engine::CampaignResult final_campaign;

  for (const engine::ExperimentSpec& spec : {mc_spec, opt_spec}) {
    const obs::ScopedTimer phase_timer(spec.name + "_phase");
    const std::size_t first_row = rows.size();
    std::string reference;
    for (unsigned threads : thread_counts) {
      engine::CampaignOptions opts;
      opts.threads = threads;
      engine::CampaignRunner runner(opts);
      engine::CampaignResult campaign;
      const double ms =
          timed_median_ms([&] { campaign = runner.run({spec}); });
      const std::string bytes = campaign_bytes(campaign);
      if (threads == thread_counts.front()) {
        reference = bytes;
      } else {
        deterministic &= bytes == reference;
      }
      Measurement m;
      m.name = spec.name;
      m.threads = threads;
      m.wall_ms = ms;
      m.speedup_vs_serial =
          rows.size() == first_row ? 1.0 : rows[first_row].wall_ms / ms;
      rows.push_back(m);
      std::cout << spec.name << " threads=" << threads << "  "
                << zc::format_sig(ms, 4) << " ms  (x"
                << zc::format_sig(m.speedup_vs_serial, 3) << ")\n";
      if (threads == thread_counts.back()) {
        final_campaign.experiments.push_back(
            std::move(campaign.experiments.front()));
        final_campaign.metrics.merge(campaign.metrics);
      }
    }
  }

  emit_json(final_campaign, rows, hardware, kSeed, deterministic);

  analysis::PaperCheck check("PERF-PARALLEL");
  check.expect_true("bitwise-deterministic",
                    "every thread count reproduced the serial campaign "
                    "bytes (cells, optima, and metric sets)",
                    deterministic);
  check.expect_true("timings-positive", "all wall times are positive",
                    [&] {
                      for (const auto& m : rows)
                        if (m.wall_ms <= 0.0) return false;
                      return true;
                    }());
  return bench::finish(check);
}
