/// PERF — Serial-vs-parallel wall times of the exec-layer hot paths:
/// Monte-Carlo trial fan-out and the joint (n, r) optimization sweep, at
/// thread counts {1, 2, hardware}. Verifies along the way that every
/// thread count produces bitwise-identical results (the exec layer's
/// core guarantee), and emits BENCH_parallel.json with the measurements
/// so CI can track the speedup.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "exec/thread_pool.hpp"
#include "obs/timer.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;
using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& work) {
  const auto start = Clock::now();
  work();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Median-of-3 to keep one-off scheduler noise out of the record.
double timed_median_ms(const std::function<void()>& work) {
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) times.push_back(time_ms(work));
  std::sort(times.begin(), times.end());
  return times[1];
}

struct Measurement {
  std::string name;
  unsigned threads = 1;
  double wall_ms = 0.0;
  double speedup_vs_serial = 1.0;
};

void emit_json(const std::vector<Measurement>& rows, unsigned hardware,
               std::uint64_t seed, bool deterministic) {
  obs::RunReport report("parallel_speedup",
                        "serial vs parallel wall times: monte_carlo + "
                        "joint_optimum");
  report.set_seed(seed);
  report.config()["hardware_threads"] = hardware;

  obs::JsonValue measurements = obs::JsonValue::array();
  for (const Measurement& m : rows) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = m.name;
    entry["threads"] = m.threads;
    entry["wall_ms"] = m.wall_ms;
    entry["speedup_vs_serial"] = m.speedup_vs_serial;
    measurements.push_back(std::move(entry));
  }
  report.data()["bitwise_deterministic"] = deterministic;
  report.data()["measurements"] = std::move(measurements);

  // Pool utilization is scheduling-dependent: runtime section, never
  // semantic metrics.
  zc::obs::MetricSet runtime;
  zc::exec::ThreadPool::shared().export_metrics(runtime);
  report.set_runtime(runtime);
  report.capture_registry();
  bench::emit_report(report, "BENCH_parallel.json");
}

}  // namespace

int main() {
  using namespace zc;
  bench::banner("PERF-PARALLEL",
                "serial vs parallel wall times: monte_carlo + joint_optimum");

  const unsigned hardware = exec::hardware_threads();
  std::vector<unsigned> thread_counts{1, 2, hardware};
  if (hardware == 2) thread_counts = {1, 2};
  if (hardware == 1) thread_counts = {1, 2};  // 2 still exercises the pool

  std::cout << "hardware threads: " << hardware << "\n\n";

  std::vector<Measurement> rows;
  bool deterministic = true;

  // --- Monte Carlo -------------------------------------------------------
  sim::NetworkConfig network;
  network.address_space = 65024;
  network.hosts = 1000;
  network.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.1, 10.0, 0.05));
  sim::ZeroconfConfig protocol;
  protocol.n = 4;
  protocol.r = 0.25;
  sim::MonteCarloOptions mc;
  mc.trials = 6000;
  mc.seed = 2026;

  sim::MonteCarloResults reference;
  obs::ScopedTimer mc_phase("monte_carlo_phase");
  for (unsigned threads : thread_counts) {
    mc.threads = threads;
    sim::MonteCarloResults last;
    const double ms = timed_median_ms(
        [&] { last = sim::monte_carlo(network, protocol, mc); });
    if (threads == thread_counts.front()) {
      reference = last;
    } else {
      deterministic &= last.collisions == reference.collisions &&
                       last.model_cost.mean == reference.model_cost.mean &&
                       last.probes.stddev == reference.probes.stddev;
    }
    Measurement m;
    m.name = "monte_carlo_6000_trials";
    m.threads = threads;
    m.wall_ms = ms;
    m.speedup_vs_serial = rows.empty() ? 1.0 : rows.front().wall_ms / ms;
    rows.push_back(m);
    std::cout << "monte_carlo   threads=" << threads << "  "
              << zc::format_sig(ms, 4) << " ms  (x"
              << zc::format_sig(m.speedup_vs_serial, 3) << ")\n";
  }

  mc_phase.stop();

  // --- Joint optimum sweep ----------------------------------------------
  const auto scenario = core::scenarios::figure2().to_params();
  const std::size_t mc_rows = rows.size();
  core::JointOptimum ref_opt;
  obs::ScopedTimer opt_phase("joint_optimum_phase");
  for (unsigned threads : thread_counts) {
    core::ROptOptions opts;
    opts.exec.threads = threads;
    core::JointOptimum last;
    const double ms = timed_median_ms(
        [&] { last = core::joint_optimum(scenario, 16, opts); });
    if (threads == thread_counts.front()) {
      ref_opt = last;
    } else {
      deterministic &= last.n == ref_opt.n && last.r == ref_opt.r &&
                       last.cost == ref_opt.cost;
    }
    Measurement m;
    m.name = "joint_optimum_n16";
    m.threads = threads;
    m.wall_ms = ms;
    m.speedup_vs_serial =
        rows.size() == mc_rows ? 1.0 : rows[mc_rows].wall_ms / ms;
    rows.push_back(m);
    std::cout << "joint_optimum threads=" << threads << "  "
              << zc::format_sig(ms, 4) << " ms  (x"
              << zc::format_sig(m.speedup_vs_serial, 3) << ")\n";
  }

  opt_phase.stop();

  emit_json(rows, hardware, mc.seed, deterministic);

  analysis::PaperCheck check("PERF-PARALLEL");
  check.expect_true("bitwise-deterministic",
                    "every thread count reproduced the serial results "
                    "bitwise",
                    deterministic);
  check.expect_true("timings-positive", "all wall times are positive",
                    [&] {
                      for (const auto& m : rows)
                        if (m.wall_ms <= 0.0) return false;
                      return true;
                    }());
  return bench::finish(check);
}
