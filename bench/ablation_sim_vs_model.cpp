/// ABL-SIM — Validation ablation (ours): the analytic DRM against the
/// protocol-faithful discrete-event simulation, on an exaggerated-loss
/// network where collisions are measurable, plus quantification of the
/// model's abstractions:
///   (1) full-listening-period cost accounting vs the draft's immediate
///       abort on a conflicting reply;
///   (2) uniform address re-pick vs the draft's avoid-failed selection.

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/reliability.hpp"
#include "sim/monte_carlo.hpp"

namespace {

constexpr double kQ = 0.4;
constexpr unsigned kHosts = 40;
constexpr unsigned kSpace = 100;
constexpr double kLoss = 0.5;
constexpr double kLambda = 10.0;
constexpr double kRoundTrip = 0.05;
constexpr double kProbeCost = 2.0;
constexpr double kErrorCost = 30.0;

zc::sim::NetworkConfig network() {
  zc::sim::NetworkConfig config;
  config.address_space = kSpace;
  config.hosts = kHosts;
  config.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
  return config;
}

zc::core::ScenarioParams model() {
  return zc::core::ScenarioParams(
      kQ, kProbeCost, kErrorCost,
      zc::prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
}

}  // namespace

int main() {
  using namespace zc;
  bench::banner("ABL-SIM",
                "analytic DRM vs protocol-faithful simulation "
                "(q=0.4, loss=0.5 - exaggerated so collisions are "
                "measurable)");

  const auto scenario = model();
  analysis::Table table({"(n, r)", "model cost", "sim cost (95% CI)",
                         "model P(col)", "sim P(col) (95% CI)",
                         "model waiting", "sim true waiting"});
  analysis::PaperCheck check("ABL-SIM");

  const std::vector<std::pair<unsigned, double>> configs{
      {1, 0.2}, {2, 0.15}, {3, 0.1}, {4, 0.2}};
  for (const auto& [n, r] : configs) {
    sim::ZeroconfConfig protocol;
    protocol.schedule = core::ProbeSchedule::uniform(n, r);
    sim::MonteCarloOptions opts;
    opts.trials = 40000;
    opts.seed = 90000 + n;
    opts.probe_cost = kProbeCost;
    opts.error_cost = kErrorCost;
    const auto mc = sim::monte_carlo(network(), protocol, opts);

    const core::ProtocolParams params{n, r};
    const double cost = core::mean_cost(scenario, params);
    const double err = core::error_probability(scenario, params);
    const double waiting = core::mean_waiting_time(scenario, params);

    table.add_row(
        {"(" + std::to_string(n) + ", " + zc::format_sig(r, 3) + ")",
         zc::format_sig(cost, 5),
         zc::format_sig(mc.model_cost.mean, 5) + " +/- " +
             zc::format_sig(mc.model_cost.ci95_halfwidth, 2),
         zc::format_sig(err, 4),
         zc::format_sig(mc.collision_rate, 4) + " [" +
             zc::format_sig(mc.collision_ci95.lower, 3) + ", " +
             zc::format_sig(mc.collision_ci95.upper, 3) + "]",
         zc::format_sig(waiting, 4),
         zc::format_sig(mc.waiting_time.mean, 4)});

    const std::string id = "n" + std::to_string(n);
    check.expect_true(id + "-cost-ci",
                      "analytic cost within 4 sigma of the simulation",
                      std::fabs(mc.model_cost.mean - cost) <=
                          4.0 * mc.model_cost.ci95_halfwidth + 1e-9);
    check.expect_true(id + "-collision-ci",
                      "analytic collision prob within the Wilson CI",
                      err >= mc.collision_ci95.lower * 0.9 &&
                          err <= mc.collision_ci95.upper * 1.1);
    check.expect_true(id + "-abort-saves-time",
                      "true waiting (immediate abort) below the model's "
                      "full-period accounting",
                      mc.waiting_time.mean < waiting);
  }
  table.print(std::cout);

  // Abstraction (a): avoid-failed address selection.
  {
    sim::ZeroconfConfig uniform;
    uniform.schedule = core::ProbeSchedule::uniform(2, 0.1);
    sim::ZeroconfConfig avoiding = uniform;
    avoiding.avoid_failed_addresses = true;
    sim::NetworkConfig dense = network();
    dense.hosts = 80;  // q = 0.8: repeated conflicts expose the policy
    sim::MonteCarloOptions opts;
    opts.trials = 8000;
    opts.seed = 777;
    const auto mc_uniform = sim::monte_carlo(dense, uniform, opts);
    const auto mc_avoid = sim::monte_carlo(dense, avoiding, opts);
    std::cout << "\naddress re-pick policy at q = 0.8 (draft detail (a)):\n"
              << "  uniform re-pick : mean attempts = "
              << zc::format_sig(mc_uniform.attempts.mean, 5) << '\n'
              << "  avoid failed    : mean attempts = "
              << zc::format_sig(mc_avoid.attempts.mean, 5) << '\n';
    check.expect_true("avoid-failed-helps",
                      "avoiding failed addresses reduces mean attempts",
                      mc_avoid.attempts.mean < mc_uniform.attempts.mean);
  }
  return bench::finish(check);
}
