/// ABLATION — Do per-probe timeout schedules beat the paper's uniform
/// (n, r) design? The draft (and the paper's optimization) spend the
/// same listening period r after every probe. But the error probability
/// depends on the *cumulative* listening times t_i = r_1 + ... + r_i:
/// the first timeout appears in every t_i (weight n), the last in t_n
/// alone (weight 1), while the mean cost is dominated by the plain sum
/// of the r_i. Front-loaded schedules (geometric factor < 1, negative
/// linear step) therefore buy the same reliability for less cost.
///
/// The bench finds the joint uniform optimum (n*, r*), then asks each
/// generator family for its cheapest n*-probe schedule at matched error
/// probability (ScheduleOptOptions::max_error_probability). A family
/// *dominates* when it is strictly cheaper and no less reliable. The
/// whole search runs twice — 1 worker thread and 8 — and the passes are
/// digest-compared bit-for-bit (the deterministic-scan contract).
/// Emits BENCH_schedules.json through the RunReport funnel.
///
/// `--smoke` shrinks the scan grids for the `schedule`-labeled ctest
/// entry.

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/params.hpp"
#include "core/reliability.hpp"
#include "core/schedule.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;

/// A stressed deployment where reliability is expensive: 40% of replies
/// never arrive, replies are slow (mean 0.1 + 1/2 s), a quarter of the
/// address space is taken, and a collision costs 10^4 probes' worth.
/// Collision probabilities stay far from the underflow floor, so the
/// matched-error comparison is numerically meaningful.
core::ScenarioParams stressed_scenario() {
  return {0.25, 1.0, 1e4,
          std::shared_ptr<const prob::DelayDistribution>(
              prob::paper_reply_delay(0.4, 2.0, 0.1))};
}

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

struct FamilyRow {
  core::ScheduleFamily family{};
  core::ScheduleOptimum optimum;
  bool dominates = false;
  double saving_pct = 0.0;
};

struct SweepResult {
  core::JointOptimum uniform;
  std::vector<FamilyRow> rows;
};

/// The full search at one thread count: uniform joint optimum, then each
/// family's cheapest schedule at the uniform optimum's error probability.
SweepResult run_sweep(const core::ScenarioParams& scenario, bool smoke,
                      unsigned threads) {
  core::ROptOptions r_opts;
  r_opts.exec.threads = threads;
  SweepResult out;
  out.uniform = core::joint_optimum(scenario, /*n_max=*/8, r_opts);

  core::ScheduleOptOptions opts;
  opts.r0_points = smoke ? 48 : 128;
  opts.shape_points = smoke ? 13 : 33;
  opts.zoom_rounds = smoke ? 1 : 2;
  opts.max_error_probability = out.uniform.error_prob;
  opts.exec.threads = threads;

  for (const core::ScheduleFamily family :
       {core::ScheduleFamily::geometric, core::ScheduleFamily::linear}) {
    FamilyRow row;
    row.family = family;
    row.optimum =
        core::optimal_schedule(scenario, family, out.uniform.n, opts);
    if (row.optimum.feasible) {
      row.dominates = row.optimum.cost < out.uniform.cost &&
                      row.optimum.error_prob <= out.uniform.error_prob;
      row.saving_pct =
          100.0 * (1.0 - row.optimum.cost / out.uniform.cost);
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

/// Every byte-determining observable of the sweep in one string.
std::string sweep_digest(const SweepResult& sweep) {
  std::ostringstream os;
  os << "uniform n=" << sweep.uniform.n << " r=" << hex(sweep.uniform.r)
     << " cost=" << hex(sweep.uniform.cost)
     << " err=" << hex(sweep.uniform.error_prob) << '\n';
  for (const FamilyRow& row : sweep.rows) {
    os << core::to_string(row.family)
       << ": feasible=" << row.optimum.feasible
       << " cost=" << hex(row.optimum.cost)
       << " err=" << hex(row.optimum.error_prob) << " timeouts=[";
    for (const double t : row.optimum.schedule.to_vector())
      os << hex(t) << ',';
    os << "]\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  bench::banner("ABLATION-SCHEDULES",
                "per-probe timeout schedules vs the uniform (n, r) "
                "optimum at matched error probability");
  if (smoke) std::cout << "[smoke mode: reduced scan grids]\n";

  const core::ScenarioParams scenario = stressed_scenario();

  // The determinism self-check doubles as the measurement: the serial
  // and 8-thread passes must agree on every byte.
  const SweepResult serial = run_sweep(scenario, smoke, 1);
  const SweepResult parallel = run_sweep(scenario, smoke, 8);
  const bool identical = sweep_digest(serial) == sweep_digest(parallel);

  std::cout << "uniform joint optimum: n=" << serial.uniform.n
            << ", r=" << format_sig(serial.uniform.r, 6)
            << ", cost=" << format_sig(serial.uniform.cost, 8)
            << ", err=" << format_sig(serial.uniform.error_prob, 6) << "\n\n"
            << "family      feasible  cost          err           "
               "saving  dominates  timeouts\n";
  bool any_dominates = false;
  for (const FamilyRow& row : serial.rows) {
    any_dominates |= row.dominates;
    std::cout << core::to_string(row.family) << "  "
              << (row.optimum.feasible ? "yes" : "NO ") << "  "
              << format_sig(row.optimum.cost, 8) << "  "
              << format_sig(row.optimum.error_prob, 6) << "  "
              << format_sig(row.saving_pct, 3) << "%  "
              << (row.dominates ? "yes" : "no ") << "  "
              << row.optimum.schedule.describe() << '\n';
  }
  std::cout << "\n1-vs-8-thread search "
            << (identical ? "identical" : "DIVERGED") << '\n';

  obs::RunReport report("ablation_schedules",
                        "schedule families vs the uniform optimum at "
                        "matched error probability");
  report.config()["smoke"] = smoke;
  report.config()["q"] = scenario.q();
  report.config()["probe_cost"] = scenario.probe_cost();
  report.config()["error_cost"] = scenario.error_cost();
  obs::JsonValue uniform = obs::JsonValue::object();
  uniform["n"] = serial.uniform.n;
  uniform["r"] = serial.uniform.r;
  uniform["cost"] = serial.uniform.cost;
  uniform["error_probability"] = serial.uniform.error_prob;
  report.data()["uniform_optimum"] = std::move(uniform);
  obs::JsonValue rows = obs::JsonValue::array();
  for (const FamilyRow& row : serial.rows) {
    obs::JsonValue r = obs::JsonValue::object();
    r["family"] = core::to_string(row.family);
    r["feasible"] = row.optimum.feasible;
    r["cost"] = row.optimum.cost;
    r["error_probability"] = row.optimum.error_prob;
    r["cost_saving_pct"] = row.saving_pct;
    r["dominates_uniform"] = row.dominates;
    obs::JsonValue timeouts = obs::JsonValue::array();
    for (const double t : row.optimum.schedule.to_vector())
      timeouts.push_back(obs::JsonValue(t));
    r["timeouts"] = std::move(timeouts);
    rows.push_back(std::move(r));
  }
  report.data()["families"] = std::move(rows);
  report.data()["identical_across_threads"] = identical;
  bench::emit_report(report, "BENCH_schedules.json");

  analysis::PaperCheck check("ABLATION-SCHEDULES");
  check.expect_true("deterministic-search",
                    "uniform optimum and every family schedule agree "
                    "bit-for-bit between the 1-thread and 8-thread passes",
                    identical);
  check.expect_true("schedule-dominates-uniform",
                    "at least one non-uniform family is strictly cheaper "
                    "than the uniform optimum at no worse error probability",
                    any_dominates);
  for (const FamilyRow& row : serial.rows)
    check.expect_true(std::string(core::to_string(row.family)) + "-feasible",
                      "the family scan found a schedule meeting the "
                      "matched-error bound",
                      row.optimum.feasible);
  return bench::finish(check);
}
