/// ABL-DIST — Distribution-family ablation (ours, prompted by Sec. 7):
/// the paper demonstrates its model with a shifted defective exponential
/// F_X, chosen for convenience, and notes that real deployments should
/// measure F_X. This bench swaps in Weibull, Erlang, uniform and
/// deterministic reply delays of *equal conditional mean and equal loss*
/// and shows the qualitative conclusions are robust to the family choice:
/// every family yields an interior cost minimum, n = 1, 2 stay
/// prohibitive, and the optimal (n, r) moves only modestly.

#include <cmath>
#include <iostream>
#include <memory>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc;

/// Equal-mean equal-loss variants of the Fig. 2 reply delay: conditional
/// mean d + 1/lambda = 1.1, loss = 1e-15, shift d = 1 (so 0.1 beyond the
/// round-trip floor).
std::vector<std::pair<std::string,
                      std::shared_ptr<const prob::DelayDistribution>>>
families() {
  const double loss = 1e-15, d = 1.0, mean_beyond = 0.1;
  std::vector<std::pair<std::string,
                        std::shared_ptr<const prob::DelayDistribution>>>
      out;
  out.emplace_back("exponential (paper)",
                   prob::paper_reply_delay(loss, 1.0 / mean_beyond, d));
  out.emplace_back("erlang-2",
                   std::make_shared<prob::DefectiveDelay>(
                       std::make_unique<prob::Erlang>(2, 2.0 / mean_beyond),
                       loss, d));
  out.emplace_back(
      "weibull-0.7 (heavy tail)",
      std::make_shared<prob::DefectiveDelay>(
          std::make_unique<prob::Weibull>(
              0.7, mean_beyond / std::tgamma(1.0 + 1.0 / 0.7)),
          loss, d));
  out.emplace_back("uniform",
                   std::make_shared<prob::DefectiveDelay>(
                       std::make_unique<prob::Uniform>(0.0, 2.0 * mean_beyond),
                       loss, d));
  // LogNormal with sigma = 0.5 and mean matched: mu = ln(mean) - sigma^2/2.
  const double sigma = 0.5;
  out.emplace_back("lognormal-0.5",
                   std::make_shared<prob::DefectiveDelay>(
                       std::make_unique<prob::LogNormal>(
                           std::log(mean_beyond) - 0.5 * sigma * sigma,
                           sigma),
                       loss, d));
  out.emplace_back("deterministic",
                   std::make_shared<prob::DefectiveDelay>(
                       std::make_unique<prob::Deterministic>(mean_beyond),
                       loss, d));
  return out;
}

}  // namespace

int main() {
  bench::banner("ABL-DIST",
                "reply-delay family ablation at equal mean/loss "
                "(Sec. 7 robustness question)");

  const core::ExponentialScenario base = core::scenarios::figure2();
  analysis::Table table({"family", "mean|arrival", "opt n", "opt r",
                         "opt cost", "P(col) at opt", "C_1 min"});
  analysis::PaperCheck check("ABL-DIST");

  double exp_cost = 0.0;
  for (const auto& [label, fx] : families()) {
    const core::ScenarioParams scenario(base.q, base.probe_cost,
                                        base.error_cost, fx);
    core::ROptOptions ropt;
    ropt.r_max = 12.0;
    const core::JointOptimum opt = core::joint_optimum(scenario, 12, ropt);
    const double c1 = core::optimal_r(scenario, 1, ropt).cost;
    table.add_row({label, zc::format_sig(fx->mean_given_arrival(), 4),
                   std::to_string(opt.n), zc::format_sig(opt.r, 4),
                   zc::format_sig(opt.cost, 5),
                   zc::format_sig(opt.error_prob, 3),
                   zc::format_sig(c1, 3)});
    if (exp_cost == 0.0) exp_cost = opt.cost;  // first row = paper family

    check.expect_true(label + ": small-n prohibitive",
                      "C_1 minimum stays astronomically large", c1 > 1e10);
    check.expect_between(label + ": optimal n", 3.0, 5.0,
                         static_cast<double>(opt.n));
    check.expect_between(label + ": optimal cost vs exponential",
                         0.5 * exp_cost, 2.0 * exp_cost, opt.cost);
    check.expect_true(label + ": reliable at optimum",
                      "collision probability below 1e-30 at the optimum",
                      opt.error_prob < 1e-30);
  }
  table.print(std::cout);

  std::cout << "\nConclusion: the optimization story of the paper does "
               "not hinge on the exponential\nchoice of F_X - all "
               "families of equal mean and loss give the same shape.\n";
  return bench::finish(check);
}
