/// ABL-HET — Heterogeneous-population ablation (ours). The paper assumes
/// one reply-delay distribution F_X for every responder. Real fleets mix
/// fast appliances with slow, lossy ones. Within one attempt all probes
/// interrogate the *same* (random) host, so the no-answer events are
/// positively correlated through the host identity — feeding the naive
/// probe-level mixture S_mix into Eq. (3)/(4) provably *underestimates*
/// the collision probability (Chebyshev's sum inequality); the correct
/// treatment conditions on the host per attempt:
///     pi_i = sum_h w_h prod_j S_h(j r).
///
/// Expected shape: the simulation (which physically assigns one host per
/// address) matches the attempt-level model and rejects the naive one.

#include <iostream>
#include <memory>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/heterogeneous.hpp"
#include "core/reliability.hpp"
#include "prob/mixture.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

// 50/50 fleet: fast & reliable vs slow & lossy.
std::vector<core::HostClass> classes() {
  return {{0.5, prob::paper_reply_delay(0.02, 30.0, 0.05)},
          {0.5, prob::paper_reply_delay(0.5, 2.0, 0.3)}};
}

std::shared_ptr<const prob::DelayDistribution> naive_mixture() {
  std::vector<prob::MixtureDelay::Component> parts;
  for (const auto& h : classes()) parts.push_back({h.weight, h.reply_delay});
  return std::make_shared<prob::MixtureDelay>(std::move(parts));
}

}  // namespace

int main() {
  bench::banner("ABL-HET",
                "heterogeneous responder fleets: naive probe-level "
                "mixture vs attempt-level conditioning vs simulation");

  const double q = 0.4;
  const unsigned hosts = 40;
  const unsigned space = 100;

  sim::NetworkConfig network;
  network.address_space = space;
  network.hosts = hosts;
  network.responder_mix = {classes()[0].reply_delay,
                           classes()[1].reply_delay};

  analysis::Table table({"(n, r)", "naive model P(col)",
                         "attempt-level P(col)", "simulated P(col)",
                         "95% CI"});
  analysis::PaperCheck check("ABL-HET");

  const core::ScenarioParams naive(q, 1.0, 1.0, naive_mixture());
  const std::vector<std::pair<unsigned, double>> configs{
      {2, 0.2}, {3, 0.15}, {4, 0.1}};
  for (const auto& [n, r] : configs) {
    const core::ProtocolParams protocol{n, r};
    const double p_naive = core::error_probability(naive, protocol);
    const double p_exact =
        core::error_probability_heterogeneous(q, classes(), protocol);

    sim::ZeroconfConfig sim_protocol;
    sim_protocol.schedule = core::ProbeSchedule::uniform(n, r);
    sim::MonteCarloOptions opts;
    opts.trials = 40000;
    opts.seed = 31000 + n;
    const auto mc = sim::monte_carlo(network, sim_protocol, opts);

    table.add_row(
        {"(" + std::to_string(n) + ", " + zc::format_sig(r, 3) + ")",
         zc::format_sig(p_naive, 4), zc::format_sig(p_exact, 4),
         zc::format_sig(mc.collision_rate, 4),
         "[" + zc::format_sig(mc.collision_ci95.lower, 3) + ", " +
             zc::format_sig(mc.collision_ci95.upper, 3) + "]"});

    const std::string id = "n" + std::to_string(n);
    check.expect_true(id + "-naive-underestimates",
                      "naive probe-level mixture below the attempt-level "
                      "model (Chebyshev)",
                      p_naive < p_exact);
    check.expect_true(id + "-exact-in-ci",
                      "attempt-level model inside the simulation's "
                      "Wilson CI",
                      p_exact >= mc.collision_ci95.lower * 0.95 &&
                          p_exact <= mc.collision_ci95.upper * 1.05);
    check.expect_true(id + "-naive-outside",
                      "naive model falls below the simulation CI "
                      "(detectably wrong)",
                      p_naive < mc.collision_ci95.lower);
  }
  table.print(std::cout);

  std::cout << "\nModeling lesson: with heterogeneous fleets, measure "
               "per-host reply behaviour and\naggregate at the attempt "
               "level (pi_i = E_h[prod_j S_h(jr)]); averaging the CDFs "
               "first\nsystematically understates the collision risk.\n";
  return bench::finish(check);
}
