/// ABL-TAIL — Tail-quantile ablation (ours). The paper optimizes the
/// *mean* user penalty; a consumer-electronics manufacturer equally cares
/// about the worst-case experience. Using the exact total-cost
/// distribution (core/distribution.hpp) we compare the draft and the
/// optimized configuration of Sec. 6 at the median, 99th and 99.9th
/// percentile of the configuration time, and cross-check the exact
/// lattice law against Monte-Carlo simulation on an exaggerated network.
///
/// Expected shape: the optimized configuration dominates the draft at
/// every displayed quantile, not just in the mean; the lattice law
/// matches simulation.

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/distribution.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

double waiting_quantile(const core::CostDistribution& dist, double r,
                        double p) {
  return static_cast<double>(dist.probes_quantile(p)) * r;
}

}  // namespace

int main() {
  bench::banner("ABL-TAIL",
                "worst-case (quantile) analysis of configuration time "
                "and cost - beyond the paper's means");

  // Sec. 6 realistic scenario: draft vs optimized.
  const auto scenario = core::scenarios::sec6().to_params();
  const core::JointOptimum opt = core::joint_optimum(scenario, 12);
  const core::ProtocolParams draft = core::scenarios::draft_unreliable();
  const core::ProtocolParams optimal{opt.n, opt.r};

  const core::CostDistribution draft_dist(scenario, draft);
  const core::CostDistribution opt_dist(scenario, optimal);

  analysis::Table table({"quantile", "draft waiting [s]",
                         "optimized waiting [s]", "draft cost",
                         "optimized cost"});
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    table.add_row({zc::format_sig(p, 4),
                   zc::format_sig(waiting_quantile(draft_dist, draft.r, p), 5),
                   zc::format_sig(waiting_quantile(opt_dist, optimal.r, p), 5),
                   zc::format_sig(draft_dist.quantile(p), 5),
                   zc::format_sig(opt_dist.quantile(p), 5)});
  }
  table.print(std::cout);

  analysis::PaperCheck check("ABL-TAIL");
  bool dominates = true;
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    dominates &= opt_dist.quantile(p) < draft_dist.quantile(p);
    dominates &= waiting_quantile(opt_dist, optimal.r, p) <
                 waiting_quantile(draft_dist, draft.r, p);
  }
  check.expect_true("quantile-dominance",
                    "optimized configuration beats the draft at every "
                    "displayed quantile, not just in the mean",
                    dominates);
  check.expect_true(
      "p999-second-attempt",
      "the 99.9th percentile reveals the second-attempt step the mean "
      "hides",
      opt_dist.probes_quantile(0.999) > opt.n &&
          opt_dist.probes_quantile(0.5) == opt.n);
  check.expect_close("mean-consistency-draft",
                     core::mean_cost(scenario, draft), draft_dist.mean(),
                     1e-9);

  // Cross-check the lattice law against simulation where collisions are
  // frequent (exaggerated network).
  {
    const double q = 0.4, loss = 0.5, lambda = 10.0, d = 0.05;
    const core::ScenarioParams hot(
        q, 2.0, 30.0, prob::paper_reply_delay(loss, lambda, d));
    const core::ProtocolParams protocol{2, 0.15};
    const core::CostDistribution dist(hot, protocol);

    sim::NetworkConfig net;
    net.address_space = 100;
    net.hosts = 40;
    net.responder_delay = std::shared_ptr<const prob::DelayDistribution>(
        prob::paper_reply_delay(loss, lambda, d));
    sim::ZeroconfConfig sim_protocol;
    sim_protocol.schedule = core::ProbeSchedule::uniform(2, 0.15);
    sim::MonteCarloOptions opts;
    opts.trials = 30000;
    opts.seed = 4242;
    opts.probe_cost = 2.0;
    opts.error_cost = 30.0;
    const auto mc = sim::monte_carlo(net, sim_protocol, opts);

    std::cout << "\nexaggerated-network cross-check (n=2, r=0.15, q=0.4, "
                 "loss=0.5):\n"
              << "  exact mean cost   : " << zc::format_sig(dist.mean(), 5)
              << "   simulated: " << zc::format_sig(mc.model_cost.mean, 5)
              << " +/- "
              << zc::format_sig(mc.model_cost.ci95_halfwidth, 2) << '\n'
              << "  exact P(collision): "
              << zc::format_sig(dist.error_probability(), 4)
              << "   simulated: " << zc::format_sig(mc.collision_rate, 4)
              << '\n';
    check.expect_true("lattice-vs-simulation-mean",
                      "exact lattice mean inside the simulation CI",
                      std::fabs(dist.mean() - mc.model_cost.mean) <=
                          4.0 * mc.model_cost.ci95_halfwidth);
    check.expect_true(
        "lattice-vs-simulation-collision",
        "exact collision probability inside the Wilson CI",
        dist.error_probability() >= mc.collision_ci95.lower * 0.9 &&
            dist.error_probability() <= mc.collision_ci95.upper * 1.1);
  }
  return bench::finish(check);
}
