/// ROBUSTNESS — Protocol behaviour at the paper's optima under
/// adversarial network conditions: each fault scenario re-estimates the
/// collision rate and mean cost at (n=4, r=2) and (n=2, r=1.75) and
/// reports the degradation factor against the clean-channel analytic
/// C(n, r) and E(n, r). Runaway scenarios (fully-occupied address space)
/// terminate through the safety caps with an explicit aborted rate
/// instead of hanging. Emits BENCH_robustness.json; verifies along the
/// way that the Monte-Carlo estimates stay bitwise-identical across
/// thread counts with every fault class active.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/params.hpp"
#include "core/reliability.hpp"
#include "faults/schedule.hpp"
#include "obs/timer.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

/// Exaggerated-stress deployment: 30 of 100 addresses taken (q = 0.3),
/// replies lost 40% of the time. The paper's own scale (q ~ 0.015,
/// loss ~ 1e-15) puts collisions at ~1e-22 — unmeasurable by simulation —
/// so, as in the tier-1 model-vs-sim tests, the channel is stressed until
/// the same formulas produce rates Monte Carlo can see.
constexpr double kQ = 0.3;
constexpr double kLoss = 0.4;
constexpr double kLambda = 20.0;
constexpr double kRoundTrip = 0.1;
constexpr double kProbeCost = 2.0;
constexpr double kErrorCost = 1000.0;
constexpr std::size_t kTrials = 6000;

sim::NetworkConfig base_network() {
  sim::NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
  // Guard rails: no scenario below may hang, whatever its faults do.
  config.max_virtual_time = 1e4;
  return config;
}

core::ScenarioParams analytic_scenario() {
  return core::ScenarioParams(
      kQ, kProbeCost, kErrorCost,
      prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
}

struct Scenario {
  std::string name;
  std::string note;
  sim::NetworkConfig network;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"baseline", "clean channel (degradation ~ 1)",
                 base_network()});

  Scenario bursty{"bursty_loss",
                  "Gilbert-Elliott bursts: 90% loss, mean burst 4 pkts",
                  base_network()};
  bursty.network.faults.gilbert_elliott.p_enter_burst = 0.05;
  bursty.network.faults.gilbert_elliott.p_exit_burst = 0.25;
  bursty.network.faults.gilbert_elliott.loss_bad = 0.9;
  out.push_back(bursty);

  Scenario flap{"link_flap", "1 s blackout every 5 s", base_network()};
  flap.network.faults.blackout.windows.duration = 1.0;
  flap.network.faults.blackout.windows.period = 5.0;
  out.push_back(flap);

  // The extra delay must exceed r for the spike to matter: the listening
  // period absorbs any spike shorter than its own slack (a +1 s spike
  // leaves these results bitwise equal to baseline).
  Scenario spike{"delay_spike",
                 "+2.5 s transit delay for 1 s out of every 4 s",
                 base_network()};
  spike.network.faults.delay_spike.windows.duration = 1.0;
  spike.network.faults.delay_spike.windows.period = 4.0;
  spike.network.faults.delay_spike.multiplier = 2.0;
  spike.network.faults.delay_spike.extra = 2.5;
  out.push_back(spike);

  Scenario dup{"dup_reorder",
               "15% duplication, 30% reordering jitter up to 0.5 s",
               base_network()};
  dup.network.faults.duplication.probability = 0.15;
  dup.network.faults.duplication.copies = 2;
  dup.network.faults.reordering.probability = 0.3;
  dup.network.faults.reordering.max_jitter = 0.5;
  out.push_back(dup);

  Scenario churn{"host_churn",
                 "half the responders deaf 2 s out of every 4 s",
                 base_network()};
  churn.network.faults.host_churn.deaf_fraction = 0.5;
  churn.network.faults.host_churn.period = 4.0;
  churn.network.faults.host_churn.deaf_duration = 2.0;
  out.push_back(churn);

  // Reliable replies: every conflict is detected, so a run either finds
  // the single free address (p = 0.01 per attempt) or hits the attempt
  // cap — the safeguard, not luck, terminates most runs.
  Scenario full{"full_occupancy",
                "99 of 100 addresses taken, reliable replies; attempt cap "
                "terminates runs",
                base_network()};
  full.network.hosts = 99;
  full.network.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(1e-9, kLambda, kRoundTrip));
  out.push_back(full);

  return out;
}

struct Cell {
  unsigned n = 0;
  double r = 0.0;
  double collision_rate = 0.0;
  double mean_cost = 0.0;
  double aborted_rate = 0.0;
  double analytic_collision = 0.0;
  double analytic_cost = 0.0;
  double collision_degradation = 0.0;
  double cost_degradation = 0.0;
};

struct Row {
  Scenario scenario;
  std::vector<Cell> cells;
};

void emit_json(const std::vector<Row>& rows, std::uint64_t seed,
               bool deterministic) {
  obs::RunReport report("robustness_sweep",
                        "collision rate & mean cost at the paper's optima "
                        "under adversarial network conditions");
  report.set_seed(seed);
  report.config()["trials_per_cell"] = kTrials;
  report.config()["q"] = kQ;
  report.config()["reply_loss"] = kLoss;
  report.config()["probe_cost"] = kProbeCost;
  report.config()["error_cost"] = kErrorCost;

  obs::JsonValue scenarios = obs::JsonValue::array();
  for (const Row& row : rows) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = row.scenario.name;
    entry["faults"] = row.scenario.network.faults.summary();
    entry["note"] = row.scenario.note;
    obs::JsonValue optima = obs::JsonValue::array();
    for (const Cell& c : row.cells) {
      obs::JsonValue cell = obs::JsonValue::object();
      cell["n"] = c.n;
      cell["r"] = c.r;
      cell["collision_rate"] = c.collision_rate;
      cell["mean_cost"] = c.mean_cost;
      cell["aborted_rate"] = c.aborted_rate;
      cell["analytic_collision"] = c.analytic_collision;
      cell["analytic_cost"] = c.analytic_cost;
      cell["collision_degradation"] = c.collision_degradation;
      cell["cost_degradation"] = c.cost_degradation;
      optima.push_back(std::move(cell));
    }
    entry["optima"] = std::move(optima);
    scenarios.push_back(std::move(entry));
  }
  report.data()["bitwise_deterministic"] = deterministic;
  report.data()["scenarios"] = std::move(scenarios);

  // The campaign metrics every monte_carlo call published (per-cause
  // delivery counters, trial tallies) plus the scenario timer tree.
  report.capture_registry();
  bench::emit_report(report, "BENCH_robustness.json");
}

}  // namespace

int main() {
  bench::banner("ROBUSTNESS",
                "collision rate & mean cost at the paper's optima under "
                "adversarial network conditions");

  // The paper's headline operating points: the draft's (n=4, r=2) and the
  // cheap-and-safe region's (n=2, r~1.75) (Sec. 6).
  const std::vector<core::ProtocolParams> optima{{4, 2.0}, {2, 1.75}};
  const auto analytic = analytic_scenario();

  constexpr std::uint64_t kSeed = 20260806;
  std::vector<Row> rows;
  bool all_terminated = true;
  for (const Scenario& scenario : scenarios()) {
    const obs::ScopedTimer scenario_timer("scenario." + scenario.name);
    Row row{scenario, {}};
    std::cout << "\n--- " << scenario.name << ": " << scenario.note
              << "  [faults: " << scenario.network.faults.summary()
              << "]\n";
    for (const auto& optimum : optima) {
      sim::ZeroconfConfig protocol;
      protocol.n = optimum.n;
      protocol.r = optimum.r;
      protocol.max_attempts = 64;  // runaway safeguard under test
      sim::MonteCarloOptions opts;
      opts.trials = kTrials;
      opts.seed = kSeed;
      opts.probe_cost = kProbeCost;
      opts.error_cost = kErrorCost;
      const auto mc = sim::monte_carlo(scenario.network, protocol, opts);
      all_terminated &= (mc.completed + mc.aborted == mc.trials) &&
                        mc.non_finite == 0;

      Cell cell;
      cell.n = optimum.n;
      cell.r = optimum.r;
      cell.collision_rate = mc.collision_rate;
      cell.mean_cost = mc.model_cost.mean;
      cell.aborted_rate = mc.aborted_rate;
      cell.analytic_collision = core::error_probability(analytic, optimum);
      cell.analytic_cost = core::mean_cost(analytic, optimum);
      cell.collision_degradation =
          cell.collision_rate / cell.analytic_collision;
      cell.cost_degradation = cell.mean_cost / cell.analytic_cost;
      row.cells.push_back(cell);

      std::cout << "  n=" << cell.n << " r=" << zc::format_fixed(cell.r, 2)
                << "  collision=" << zc::format_sig(cell.collision_rate, 3)
                << " (analytic " << zc::format_sig(cell.analytic_collision, 3)
                << ", x" << zc::format_sig(cell.collision_degradation, 3)
                << ")  cost=" << zc::format_sig(cell.mean_cost, 4)
                << " (analytic " << zc::format_sig(cell.analytic_cost, 4)
                << ", x" << zc::format_sig(cell.cost_degradation, 3)
                << ")  aborted=" << zc::format_sig(cell.aborted_rate, 3)
                << "\n";
    }
    rows.push_back(row);
  }

  // Determinism spot-check: the heaviest fault mix, serial vs 2 threads.
  bool deterministic = true;
  {
    const obs::ScopedTimer determinism_timer("determinism_check");
    sim::NetworkConfig net = base_network();
    net.faults.gilbert_elliott.p_enter_burst = 0.05;
    net.faults.gilbert_elliott.p_exit_burst = 0.25;
    net.faults.gilbert_elliott.loss_bad = 0.9;
    net.faults.duplication.probability = 0.15;
    net.faults.reordering.probability = 0.3;
    net.faults.reordering.max_jitter = 0.5;
    net.faults.host_churn.deaf_fraction = 0.5;
    net.faults.host_churn.period = 4.0;
    net.faults.host_churn.deaf_duration = 2.0;
    sim::ZeroconfConfig protocol;
    protocol.n = 4;
    protocol.r = 2.0;
    protocol.max_attempts = 64;
    sim::MonteCarloOptions opts;
    opts.trials = 2000;
    opts.seed = 7;
    opts.threads = 1;
    const auto serial = sim::monte_carlo(net, protocol, opts);
    opts.threads = 2;
    const auto parallel = sim::monte_carlo(net, protocol, opts);
    deterministic = serial.collisions == parallel.collisions &&
                    serial.aborted == parallel.aborted &&
                    serial.model_cost.mean == parallel.model_cost.mean &&
                    serial.probes.stddev == parallel.probes.stddev &&
                    // The semantic metric sets (per-cause delivery counts,
                    // trial tallies, histograms) must serialize to the
                    // same bytes, not just agree on headline numbers.
                    obs::metrics_to_json(serial.metrics).dump() ==
                        obs::metrics_to_json(parallel.metrics).dump();
    std::cout << "\nfault-injected monte_carlo threads 1 vs 2: "
              << (deterministic ? "bitwise identical" : "MISMATCH") << "\n";
  }

  emit_json(rows, kSeed, deterministic);

  const Row& baseline = rows.front();
  const Row& full = rows.back();
  analysis::PaperCheck check("ROBUSTNESS");
  check.expect_true(
      "all-trials-terminate",
      "every trial in every scenario ended as completed or aborted "
      "(no hangs, no non-finite cost samples)",
      all_terminated);
  check.expect_true(
      "baseline-matches-analytic",
      "clean-channel cost within 10% of analytic C(n, r) at both optima",
      [&] {
        for (const Cell& c : baseline.cells)
          if (std::abs(c.cost_degradation - 1.0) > 0.10) return false;
        return true;
      }());
  check.expect_true(
      "faults-degrade-or-match",
      "every fault scenario's degradation factors are finite and positive",
      [&] {
        for (const Row& row : rows)
          for (const Cell& c : row.cells)
            if (!std::isfinite(c.cost_degradation) ||
                c.cost_degradation <= 0.0 ||
                !std::isfinite(c.collision_degradation))
              return false;
        return true;
      }());
  check.expect_true(
      "full-occupancy-aborts",
      "the near-full address space trips the attempt cap in >50% of runs",
      [&] {
        for (const Cell& c : full.cells)
          if (c.aborted_rate <= 0.5) return false;
        return true;
      }());
  check.expect_true("bitwise-deterministic",
                    "fault-injected monte_carlo agrees bitwise across "
                    "thread counts",
                    deterministic);
  return bench::finish(check);
}
