/// ROBUSTNESS — Protocol behaviour at the paper's optima under
/// adversarial network conditions: each fault scenario re-estimates the
/// collision rate and mean cost at (n=4, r=2) and (n=2, r=1.75) and
/// reports the degradation factor against the clean-channel analytic
/// C(n, r) and E(n, r). The whole sweep is one engine campaign — an
/// analytic denominator spec plus one Monte-Carlo spec per fault
/// scenario. Runaway scenarios (fully-occupied address space) terminate
/// through the safety caps with an explicit aborted rate instead of
/// hanging. Emits BENCH_robustness.json; verifies along the way that the
/// fault-injected campaign stays bitwise-identical across thread counts.

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/expectation.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "engine/campaign.hpp"
#include "obs/timer.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;

/// Exaggerated-stress deployment: 30 of 100 addresses taken (q = 0.3),
/// replies lost 40% of the time. The paper's own scale (q ~ 0.015,
/// loss ~ 1e-15) puts collisions at ~1e-22 — unmeasurable by simulation —
/// so, as in the tier-1 model-vs-sim tests, the channel is stressed until
/// the same formulas produce rates Monte Carlo can see.
constexpr double kQ = 0.3;
constexpr double kLoss = 0.4;
constexpr double kLambda = 20.0;
constexpr double kRoundTrip = 0.1;
constexpr double kProbeCost = 2.0;
constexpr double kErrorCost = 1000.0;
constexpr std::size_t kTrials = 6000;
constexpr std::uint64_t kSeed = 20260806;

// The paper's headline operating points: the draft's (n=4, r=2) and the
// cheap-and-safe region's (n=2, r~1.75) (Sec. 6).
const std::vector<core::ProtocolParams> kOptima{{4, 2.0}, {2, 1.75}};

std::shared_ptr<const prob::DelayDistribution> stressed_reply() {
  return std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
}

struct Scenario {
  std::string name;
  std::string note;
  faults::FaultSchedule faults;
  unsigned hosts = 30;
  std::shared_ptr<const prob::DelayDistribution> reply = stressed_reply();
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"baseline", "clean channel (degradation ~ 1)", {}});

  Scenario bursty{"bursty_loss",
                  "Gilbert-Elliott bursts: 90% loss, mean burst 4 pkts",
                  {}};
  bursty.faults.gilbert_elliott.p_enter_burst = 0.05;
  bursty.faults.gilbert_elliott.p_exit_burst = 0.25;
  bursty.faults.gilbert_elliott.loss_bad = 0.9;
  out.push_back(bursty);

  Scenario flap{"link_flap", "1 s blackout every 5 s", {}};
  flap.faults.blackout.windows.duration = 1.0;
  flap.faults.blackout.windows.period = 5.0;
  out.push_back(flap);

  // The extra delay must exceed r for the spike to matter: the listening
  // period absorbs any spike shorter than its own slack (a +1 s spike
  // leaves these results bitwise equal to baseline).
  Scenario spike{"delay_spike",
                 "+2.5 s transit delay for 1 s out of every 4 s",
                 {}};
  spike.faults.delay_spike.windows.duration = 1.0;
  spike.faults.delay_spike.windows.period = 4.0;
  spike.faults.delay_spike.multiplier = 2.0;
  spike.faults.delay_spike.extra = 2.5;
  out.push_back(spike);

  Scenario dup{"dup_reorder",
               "15% duplication, 30% reordering jitter up to 0.5 s",
               {}};
  dup.faults.duplication.probability = 0.15;
  dup.faults.duplication.copies = 2;
  dup.faults.reordering.probability = 0.3;
  dup.faults.reordering.max_jitter = 0.5;
  out.push_back(dup);

  Scenario churn{"host_churn",
                 "half the responders deaf 2 s out of every 4 s",
                 {}};
  churn.faults.host_churn.deaf_fraction = 0.5;
  churn.faults.host_churn.period = 4.0;
  churn.faults.host_churn.deaf_duration = 2.0;
  out.push_back(churn);

  // Reliable replies: every conflict is detected, so a run either finds
  // the single free address (p = 0.01 per attempt) or hits the attempt
  // cap — the safeguard, not luck, terminates most runs.
  Scenario full{"full_occupancy",
                "99 of 100 addresses taken, reliable replies; attempt cap "
                "terminates runs",
                {}};
  full.hosts = 99;
  full.reply = std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(1e-9, kLambda, kRoundTrip));
  out.push_back(full);

  return out;
}

/// One Monte-Carlo spec per fault scenario: both optima on its grid,
/// the guard rails (virtual-time budget + attempt cap) always armed.
engine::ExperimentSpec scenario_spec(const Scenario& scenario) {
  return engine::SpecBuilder(
             scenario.name,
             core::ScenarioParams(kQ, kProbeCost, kErrorCost, scenario.reply))
      .protocol(kOptima[0])
      .protocol(kOptima[1])
      .estimator(engine::Estimator::monte_carlo)
      .network(/*address_space=*/100, scenario.hosts)
      .faults(scenario.faults)
      .max_virtual_time(1e4)  // no scenario may hang, whatever its faults do
      .safety_caps(/*max_attempts=*/64)  // runaway safeguard under test
      .trials(kTrials)
      .seed(kSeed)
      .build();
}

struct Cell {
  unsigned n = 0;
  double r = 0.0;
  double collision_rate = 0.0;
  double mean_cost = 0.0;
  double aborted_rate = 0.0;
  double analytic_collision = 0.0;
  double analytic_cost = 0.0;
  double collision_degradation = 0.0;
  double cost_degradation = 0.0;
};

struct Row {
  Scenario scenario;
  std::vector<Cell> cells;
};

void emit_json(const engine::CampaignResult& campaign,
               const std::vector<Row>& rows, bool deterministic) {
  obs::RunReport report = campaign.report(
      "robustness_sweep",
      "collision rate & mean cost at the paper's optima under adversarial "
      "network conditions");
  report.set_seed(kSeed);
  report.config()["trials_per_cell"] = kTrials;
  report.config()["q"] = kQ;
  report.config()["reply_loss"] = kLoss;
  report.config()["probe_cost"] = kProbeCost;
  report.config()["error_cost"] = kErrorCost;

  obs::JsonValue scenarios = obs::JsonValue::array();
  for (const Row& row : rows) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = row.scenario.name;
    entry["faults"] = row.scenario.faults.summary();
    entry["note"] = row.scenario.note;
    obs::JsonValue optima = obs::JsonValue::array();
    for (const Cell& c : row.cells) {
      obs::JsonValue cell = obs::JsonValue::object();
      cell["n"] = c.n;
      cell["r"] = c.r;
      cell["collision_rate"] = c.collision_rate;
      cell["mean_cost"] = c.mean_cost;
      cell["aborted_rate"] = c.aborted_rate;
      cell["analytic_collision"] = c.analytic_collision;
      cell["analytic_cost"] = c.analytic_cost;
      cell["collision_degradation"] = c.collision_degradation;
      cell["cost_degradation"] = c.cost_degradation;
      optima.push_back(std::move(cell));
    }
    entry["optima"] = std::move(optima);
    scenarios.push_back(std::move(entry));
  }
  report.data()["bitwise_deterministic"] = deterministic;
  report.data()["scenarios"] = std::move(scenarios);
  report.set_timers(obs::Registry::global().timers_snapshot());
  bench::emit_report(report, "BENCH_robustness.json");
}

}  // namespace

int main() {
  bench::banner("ROBUSTNESS",
                "collision rate & mean cost at the paper's optima under "
                "adversarial network conditions");

  // The whole sweep as one campaign: the clean-channel analytic
  // denominator first, then one Monte-Carlo spec per fault scenario.
  const std::vector<Scenario> fault_scenarios = scenarios();
  std::vector<engine::ExperimentSpec> specs;
  specs.push_back(
      engine::SpecBuilder("analytic_reference",
                          core::ScenarioParams(kQ, kProbeCost, kErrorCost,
                                               stressed_reply()))
          .protocol(kOptima[0])
          .protocol(kOptima[1])
          .build());
  for (const Scenario& scenario : fault_scenarios)
    specs.push_back(scenario_spec(scenario));

  engine::CampaignRunner runner;
  engine::CampaignResult campaign;
  {
    const obs::ScopedTimer sweep_timer("robustness_campaign");
    campaign = runner.run(specs);
  }
  const std::vector<engine::CellResult>& analytic =
      campaign.experiments[0].cells;

  std::vector<Row> rows;
  bool all_terminated = true;
  for (std::size_t s = 0; s < fault_scenarios.size(); ++s) {
    const engine::ExperimentResult& experiment = campaign.experiments[s + 1];
    Row row{fault_scenarios[s], {}};
    std::cout << "\n--- " << row.scenario.name << ": " << row.scenario.note
              << "  [faults: " << row.scenario.faults.summary() << "]\n";
    for (std::size_t i = 0; i < experiment.cells.size(); ++i) {
      const engine::CellResult& mc = experiment.cells[i];
      all_terminated &= (mc.completed + mc.aborted == mc.trials) &&
                        mc.non_finite == 0;

      Cell cell;
      cell.n = mc.protocol.n;
      cell.r = mc.protocol.r;
      cell.collision_rate = mc.error_probability;
      cell.mean_cost = mc.mean_cost;
      cell.aborted_rate = mc.aborted_rate;
      cell.analytic_collision = analytic[i].error_probability;
      cell.analytic_cost = analytic[i].mean_cost;
      cell.collision_degradation =
          cell.collision_rate / cell.analytic_collision;
      cell.cost_degradation = cell.mean_cost / cell.analytic_cost;
      row.cells.push_back(cell);

      std::cout << "  n=" << cell.n << " r=" << zc::format_fixed(cell.r, 2)
                << "  collision=" << zc::format_sig(cell.collision_rate, 3)
                << " (analytic " << zc::format_sig(cell.analytic_collision, 3)
                << ", x" << zc::format_sig(cell.collision_degradation, 3)
                << ")  cost=" << zc::format_sig(cell.mean_cost, 4)
                << " (analytic " << zc::format_sig(cell.analytic_cost, 4)
                << ", x" << zc::format_sig(cell.cost_degradation, 3)
                << ")  aborted=" << zc::format_sig(cell.aborted_rate, 3)
                << "\n";
    }
    rows.push_back(row);
  }

  // Determinism spot-check: the heaviest fault mix, serial vs 2 threads,
  // compared on the serialized campaign (cells + metric sets), not just
  // headline numbers.
  bool deterministic = true;
  {
    const obs::ScopedTimer determinism_timer("determinism_check");
    faults::FaultSchedule heavy;
    heavy.gilbert_elliott.p_enter_burst = 0.05;
    heavy.gilbert_elliott.p_exit_burst = 0.25;
    heavy.gilbert_elliott.loss_bad = 0.9;
    heavy.duplication.probability = 0.15;
    heavy.reordering.probability = 0.3;
    heavy.reordering.max_jitter = 0.5;
    heavy.host_churn.deaf_fraction = 0.5;
    heavy.host_churn.period = 4.0;
    heavy.host_churn.deaf_duration = 2.0;
    const engine::ExperimentSpec heavy_spec =
        engine::SpecBuilder("heavy_faults",
                            core::ScenarioParams(kQ, kProbeCost, kErrorCost,
                                                 stressed_reply()))
            .protocol({4, 2.0})
            .estimator(engine::Estimator::monte_carlo)
            .network(/*address_space=*/100, /*hosts=*/30)
            .faults(heavy)
            .max_virtual_time(1e4)
            .safety_caps(64)
            .trials(2000)
            .seed(7)
            .build();
    const auto run_at = [&](unsigned threads) {
      engine::CampaignOptions opts;
      opts.threads = threads;
      engine::CampaignRunner check_runner(opts);
      const engine::CampaignResult result = check_runner.run({heavy_spec});
      return result.to_json().dump() +
             obs::metrics_to_json(result.metrics).dump();
    };
    deterministic = run_at(1) == run_at(2);
    std::cout << "\nfault-injected campaign threads 1 vs 2: "
              << (deterministic ? "bitwise identical" : "MISMATCH") << "\n";
  }

  emit_json(campaign, rows, deterministic);

  const Row& baseline = rows.front();
  const Row& full = rows.back();
  analysis::PaperCheck check("ROBUSTNESS");
  check.expect_true(
      "all-trials-terminate",
      "every trial in every scenario ended as completed or aborted "
      "(no hangs, no non-finite cost samples)",
      all_terminated);
  check.expect_true(
      "baseline-matches-analytic",
      "clean-channel cost within 10% of analytic C(n, r) at both optima",
      [&] {
        for (const Cell& c : baseline.cells)
          if (std::abs(c.cost_degradation - 1.0) > 0.10) return false;
        return true;
      }());
  check.expect_true(
      "faults-degrade-or-match",
      "every fault scenario's degradation factors are finite and positive",
      [&] {
        for (const Row& row : rows)
          for (const Cell& c : row.cells)
            if (!std::isfinite(c.cost_degradation) ||
                c.cost_degradation <= 0.0 ||
                !std::isfinite(c.collision_degradation))
              return false;
        return true;
      }());
  check.expect_true(
      "full-occupancy-aborts",
      "the near-full address space trips the attempt cap in >50% of runs",
      [&] {
        for (const Cell& c : full.cells)
          if (c.aborted_rate <= 0.5) return false;
        return true;
      }());
  check.expect_true("bitwise-deterministic",
                    "the fault-injected campaign agrees bitwise across "
                    "thread counts",
                    deterministic);
  return bench::finish(check);
}
