/// ABL-DEFENSE — Maintenance-phase ablation (ours). The paper prices a
/// collision at an abstract cost E, standing for the "costly protocol to
/// re-establish the integrity of the IP numbers" (Sec. 3.1). This bench
/// simulates that re-establishment vehicle — ARP announcements plus
/// owner defense — and measures how many silent collisions the
/// announcement phase catches, and how quickly, as the medium degrades.
///
/// Setup: the owner answers any request with probability 1-L_r = 0.4
/// (busy host), the medium loses each delivery with probability L_m, and
/// the joiner probes once (n = 1) so silent collisions are frequent.
/// Per announcement the collision is caught with probability
///   p = (1-L_m)^2 (1-L_r)          (announce out, defense back)
/// so with ANNOUNCE_NUM = 2 the detection rate is 1-(1-p)^2 — an
/// analytic cross-check the simulation must reproduce.

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "prob/families.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace {

using namespace zc;

constexpr double kResponderLoss = 0.6;
constexpr unsigned kAnnounceCount = 2;

struct Outcomes {
  std::size_t collisions = 0;
  std::size_t detected = 0;
  sim::RunningStats latency;
};

Outcomes run(double medium_loss, std::size_t trials, std::uint64_t seed) {
  prob::Rng seeder(seed);
  Outcomes out;
  for (std::size_t t = 0; t < trials; ++t) {
    sim::NetworkConfig config;
    config.address_space = 50;
    config.hosts = 25;  // q = 0.5: silent collisions are common
    config.responder_delay = std::make_shared<prob::DefectiveDelay>(
        std::make_unique<prob::Exponential>(200.0), kResponderLoss, 0.0);
    config.medium.loss = medium_loss;
    config.medium.transit_delay =
        std::make_shared<prob::Exponential>(200.0);  // 5 ms transit

    sim::Network net(config, seeder.next_u64());
    sim::ZeroconfConfig protocol;
    protocol.schedule = core::ProbeSchedule::uniform(1, 0.1);
    protocol.announce_count = kAnnounceCount;
    protocol.announce_interval = 2.0;
    const sim::RunResult result = net.run_join(protocol);
    if (!result.collision) continue;
    ++out.collisions;
    if (result.collision_detected) {
      ++out.detected;
      out.latency.add(result.detection_latency);
    }
  }
  return out;
}

double analytic_rate(double medium_loss) {
  const double per_announce = (1.0 - medium_loss) * (1.0 - medium_loss) *
                              (1.0 - kResponderLoss);
  return 1.0 - std::pow(1.0 - per_announce,
                        static_cast<double>(kAnnounceCount));
}

}  // namespace

int main() {
  bench::banner("ABL-DEFENSE",
                "what the collision cost E pays for: announcement-phase "
                "detection of silent collisions");

  analysis::Table table({"medium loss", "collisions", "detected",
                         "detection rate", "analytic rate",
                         "mean latency [s]"});
  analysis::PaperCheck check("ABL-DEFENSE");

  std::vector<double> rates;
  const std::size_t trials = 8000;
  for (const double loss : {0.0, 0.2, 0.5, 0.8}) {
    const Outcomes o = run(loss, trials, 2026);
    const double rate =
        o.collisions == 0
            ? 0.0
            : static_cast<double>(o.detected) /
                  static_cast<double>(o.collisions);
    rates.push_back(rate);
    table.add_row({zc::format_sig(loss, 3), std::to_string(o.collisions),
                   std::to_string(o.detected), zc::format_sig(rate, 4),
                   zc::format_sig(analytic_rate(loss), 4),
                   o.latency.count() > 0
                       ? zc::format_sig(o.latency.mean(), 4)
                       : "-"});

    const auto ci = sim::wilson_ci95(o.detected, o.collisions);
    check.expect_true(
        "analytic-rate-loss-" + zc::format_sig(loss, 2),
        "simulated detection rate matches 1-(1-(1-Lm)^2(1-Lr))^2",
        analytic_rate(loss) >= ci.lower - 0.01 &&
            analytic_rate(loss) <= ci.upper + 0.01);
  }
  table.print(std::cout);

  std::cout << "\nReading the table: the announcement phase is the cheap "
               "insurance the draft\nbuilds in - but it rides the same "
               "lossy medium, so the residual undetected-\ncollision "
               "probability (what E ultimately prices) grows with link "
               "loss.\n";

  bool decays = true;
  for (std::size_t i = 1; i < rates.size(); ++i)
    decays &= rates[i] <= rates[i - 1] + 0.02;
  check.expect_true("decays-with-loss",
                    "detection rate decays as medium loss grows", decays);
  const Outcomes clean = run(0.0, trials, 4052);
  check.expect_true(
      "latency-bounded-by-announce-interval",
      "mean detection latency stays below transit + ANNOUNCE_INTERVAL",
      clean.latency.count() > 0 && clean.latency.mean() < 2.1);
  check.expect_true(
      "first-announcement-fast",
      "detections via the first announcement land within ~0.1 s",
      clean.latency.count() > 1 && clean.latency.ci95_halfwidth() < 1.0);
  return bench::finish(check);
}
