/// FIG5 — Reproduces Figure 5: the collision probability E(n, r) for
/// n = 1..8 against r, on a logarithmic probability axis (Sec. 5), in the
/// Fig. 2 scenario.
///
/// Expected shape (paper): monotone decreasing in both n and r; each
/// curve flattens onto its loss floor q (1-l)^n / (1 - q(1-(1-l)^n)).

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/cost_surface.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "numerics/grid.hpp"

int main() {
  using namespace zc;
  bench::banner("FIG5",
                "collision probability E(n, r), n = 1..8, log scale "
                "(paper Fig. 5)");

  const auto scenario = core::scenarios::figure2().to_params();
  const auto r_grid = numerics::linspace(0.2, 4.0, 160);

  // One parallel surface sweep: all eight Err(n, r) curves share each
  // column's pi_n(r) ladder.
  const core::CostSurface surface(scenario, 8);
  const auto grid = surface.error_probabilities(r_grid);

  std::vector<analysis::Series> curves;
  for (unsigned n = 1; n <= 8; ++n)
    curves.push_back({"E_" + std::to_string(n), r_grid, grid.row(n)});

  analysis::PlotOptions plot;
  plot.title = "Figure 5: E(n, r) for n = 1..8 (log-y)";
  plot.x_label = "r [s]";
  plot.log_y = true;
  analysis::ascii_plot(std::cout, curves, plot);

  analysis::GnuplotOptions gp;
  gp.title = "Collision probability E(n, r) (paper Fig. 5)";
  gp.x_label = "r";
  gp.y_label = "P(error)";
  gp.log_y = true;
  gp.output = "fig5_error_probability.png";
  bench::emit_figure("fig5_error_probability", curves, gp);

  // Loss floors per n.
  analysis::Table table({"n", "E(n, 4)", "loss floor (r -> inf)"});
  const double q = scenario.q();
  for (unsigned n = 1; n <= 8; ++n) {
    const double pin = std::pow(1e-15, n);
    const double floor = q * pin / (1.0 - q * (1.0 - pin));
    table.add_row({std::to_string(n),
                   zc::format_sig(curves[n - 1].y.back(), 4),
                   zc::format_sig(floor, 4)});
  }
  std::cout << '\n';
  table.print(std::cout);

  analysis::PaperCheck check("FIG5");
  bool decreasing_in_r = true;
  for (const auto& curve : curves)
    for (std::size_t i = 1; i < curve.y.size(); ++i)
      decreasing_in_r &= curve.y[i] <= curve.y[i - 1] * (1.0 + 1e-12);
  check.expect_true("monotone-r", "E(n, r) non-increasing in r",
                    decreasing_in_r);
  bool decreasing_in_n = true;
  for (std::size_t i = 0; i < r_grid.size(); ++i)
    for (unsigned n = 1; n < 8; ++n)
      decreasing_in_n &= curves[n].y[i] <= curves[n - 1].y[i];
  check.expect_true("monotone-n", "E(n, r) decreasing in n",
                    decreasing_in_n);
  check.expect_true("at-zero-q",
                    "E(n, 0) = q: listening is useless at r = 0",
                    std::fabs(core::error_probability(
                                  scenario, core::ProtocolParams{4, 0.0}) -
                              q) < 1e-12);
  // Floors: spot-check n = 4 at huge r against the closed form.
  const double pin4 = std::pow(1e-15, 4);
  const double floor4 = q * pin4 / (1.0 - q * (1.0 - pin4));
  check.expect_close(
      "floor-n4", floor4,
      core::error_probability(scenario, core::ProtocolParams{4, 1e4}),
      1e-6);
  // Order-of-magnitude span on the log axis (paper's axis covers tens of
  // decades).
  const double lg_hi = std::log10(curves[0].y.front());
  const double lg_lo = std::log10(curves[7].y.back());
  check.expect_true("log-span",
                    "curves span tens of decades on the log axis",
                    lg_hi - lg_lo > 30.0);
  return bench::finish(check);
}
